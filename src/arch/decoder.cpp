#include "arch/decoder.hpp"

namespace senids::arch {

namespace {

/// Architectural cap: no IA-32 instruction exceeds 15 bytes.
constexpr std::size_t kMaxInsnLen = 15;

/// Fail-flagged byte reader. We use a flag instead of exceptions because
/// the decoder sits on the hot path of every bench.
struct Reader {
  util::ByteView buf;
  std::size_t pos;
  bool fail = false;

  std::uint8_t u8() noexcept {
    if (pos >= buf.size()) {
      fail = true;
      return 0;
    }
    return buf[pos++];
  }
  std::uint16_t u16() noexcept {
    std::uint16_t lo = u8(), hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() noexcept {
    std::uint32_t v = u16();
    return v | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() noexcept {
    std::uint64_t v = u32();
    return v | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::int8_t s8() noexcept { return static_cast<std::int8_t>(u8()); }
  std::int32_t s32() noexcept { return static_cast<std::int32_t>(u32()); }
};

struct ModRM {
  std::uint8_t mod, reg, rm;
};

ModRM read_modrm(Reader& r) noexcept {
  const std::uint8_t b = r.u8();
  return ModRM{static_cast<std::uint8_t>(b >> 6), static_cast<std::uint8_t>((b >> 3) & 7),
               static_cast<std::uint8_t>(b & 7)};
}

Reg reg_of_width(unsigned index, RegWidth w) noexcept {
  switch (w) {
    case RegWidth::k8Lo:
    case RegWidth::k8Hi:
      return reg8(index);
    case RegWidth::k16:
      return reg16(index);
    case RegWidth::k32:
      return reg32(index);
    case RegWidth::k64:
      return reg64(index);
  }
  return reg32(index);
}

/// Decode the r/m side of a ModRM byte (32-bit or 64-bit addressing,
/// with REX extensions applied from `pre`).
Operand decode_rm(Reader& r, const ModRM& m, RegWidth width, Mode mode,
                  const Prefixes& pre) noexcept {
  if (m.mod == 3) {
    const unsigned rm_ext = m.rm + (pre.rex_b ? 8u : 0u);
    if (width == RegWidth::k8Lo || width == RegWidth::k8Hi) {
      return Operand::make_reg(reg8(rm_ext, pre.rex));
    }
    return Operand::make_reg(reg_of_width(rm_ext, width));
  }

  const bool long_mode = mode == Mode::k64;
  auto addr_reg = [&](unsigned index) {
    return long_mode ? reg64(index) : reg32(index);
  };
  MemRef mem;
  mem.width = width;
  if (m.rm == 4) {
    const std::uint8_t sib = r.u8();
    const unsigned ss = sib >> 6;
    const unsigned idx = ((sib >> 3) & 7) + (pre.rex_x ? 8u : 0u);
    const unsigned base = (sib & 7) + (pre.rex_b ? 8u : 0u);
    if (idx != 4) {  // index encoding 4 means "no index" (but r12 is valid)
      mem.index = addr_reg(idx);
      mem.scale = static_cast<std::uint8_t>(1u << ss);
    }
    if ((base & 7) == 5 && m.mod == 0) {
      mem.disp = r.s32();  // [index*scale + disp32], no base
    } else {
      mem.base = addr_reg(base);
    }
  } else if (m.rm == 5 && m.mod == 0) {
    mem.disp = r.s32();       // absolute disp32 (32-bit mode)
    mem.rip = long_mode;      // [rip + disp32] in 64-bit mode
  } else {
    mem.base = addr_reg(m.rm + (pre.rex_b ? 8u : 0u));
  }
  if (m.mod == 1) mem.disp = r.s8();
  else if (m.mod == 2) mem.disp = r.s32();
  return Operand::make_mem(mem);
}

/// Group-1 arithmetic mnemonics indexed by the ModRM reg field.
constexpr Mnemonic kGroup1[] = {Mnemonic::kAdd, Mnemonic::kOr,  Mnemonic::kAdc,
                                Mnemonic::kSbb, Mnemonic::kAnd, Mnemonic::kSub,
                                Mnemonic::kXor, Mnemonic::kCmp};

/// Shift-group mnemonics indexed by the ModRM reg field.
constexpr Mnemonic kShiftGroup[] = {Mnemonic::kRol, Mnemonic::kRor, Mnemonic::kRcl,
                                    Mnemonic::kRcr, Mnemonic::kShl, Mnemonic::kShr,
                                    Mnemonic::kShl /*SAL*/, Mnemonic::kSar};

/// Arithmetic family base opcodes (00,08,...,38) map to these mnemonics.
constexpr Mnemonic kArithFamily[] = {Mnemonic::kAdd, Mnemonic::kOr,  Mnemonic::kAdc,
                                     Mnemonic::kSbb, Mnemonic::kAnd, Mnemonic::kSub,
                                     Mnemonic::kXor, Mnemonic::kCmp};

}  // namespace

Instruction decode(util::ByteView code, std::size_t offset, Mode mode) {
  Instruction insn;
  insn.offset = offset;
  insn.mode = mode;
  if (offset >= code.size()) return insn;  // invalid, length 0: caller must stop

  Reader r{code, offset};
  Prefixes pre;

  // -------- prefix scan (bounded: total instruction capped at 15 bytes)
  for (;;) {
    if (r.pos - offset >= kMaxInsnLen) {
      insn.length = 1;
      return insn;
    }
    const std::uint8_t b = r.u8();
    if (r.fail) {
      insn.length = 1;
      return insn;
    }
    if (mode == Mode::k64 && b >= 0x40 && b <= 0x4F) {
      // REX prefix. It only applies when it immediately precedes the
      // opcode; a later legacy prefix voids it (below), matching CPUs.
      pre.rex = true;
      pre.rex_w = (b & 8) != 0;
      pre.rex_r = (b & 4) != 0;
      pre.rex_x = (b & 2) != 0;
      pre.rex_b = (b & 1) != 0;
      continue;
    }
    bool is_prefix = true;
    switch (b) {
      case 0x66: pre.opsize = true; break;
      case 0x67: pre.addrsize = true; break;
      case 0xF0: pre.lock = true; break;
      case 0xF2: pre.repne = true; break;
      case 0xF3: pre.rep = true; break;
      case 0x26: case 0x2E: case 0x36: case 0x3E: case 0x64: case 0x65:
        pre.segment = true;
        break;
      default:
        is_prefix = false;
        break;
    }
    if (!is_prefix) {
      r.pos--;  // unread the opcode byte
      break;
    }
    pre.rex = pre.rex_w = pre.rex_r = pre.rex_x = pre.rex_b = false;
  }
  insn.prefixes = pre;

  // 16-bit addressing (0x67) is never emitted by our corpus generators and
  // changes ModRM semantics entirely; refuse rather than mis-decode.
  if (pre.addrsize) {
    insn.length = 1;
    return insn;
  }

  const bool long_mode = mode == Mode::k64;
  const RegWidth vw = pre.rex_w     ? RegWidth::k64
                      : pre.opsize  ? RegWidth::k16
                                    : RegWidth::k32;  // "v" width
  // Stack operations (push/pop/call/ret) default to 64-bit in long mode.
  const RegWidth stackw = long_mode ? RegWidth::k64 : vw;
  insn.op_width = vw;
  // REX extensions for the ModRM.reg field and opcode-embedded registers.
  auto xr = [&](unsigned f) { return f + (pre.rex_r ? 8u : 0u); };
  auto xb = [&](unsigned f) { return f + (pre.rex_b ? 8u : 0u); };

  auto finish = [&](Mnemonic m) -> Instruction& {
    insn.mnemonic = m;
    insn.length = static_cast<std::uint8_t>(r.pos - offset);
    if (r.fail || insn.length > kMaxInsnLen) {
      insn.mnemonic = Mnemonic::kInvalid;
      insn.length = 1;
    }
    return insn;
  };
  auto invalid = [&]() -> Instruction& {
    insn.mnemonic = Mnemonic::kInvalid;
    insn.length = 1;
    return insn;
  };

  // Immediate of "z" size: 16 bits with the opsize prefix, else 32.
  auto imm_z = [&]() -> std::int64_t {
    return pre.opsize ? static_cast<std::int64_t>(static_cast<std::int16_t>(r.u16()))
                      : static_cast<std::int64_t>(r.s32());
  };
  // Relative branch target, resolved to an absolute buffer offset.
  auto rel8_target = [&]() -> std::int64_t {
    const std::int8_t d = r.s8();
    return static_cast<std::int64_t>(r.pos) + d;  // r.pos is the next-insn offset
  };
  auto relz_target = [&]() -> std::int64_t {
    const std::int64_t d = pre.opsize
        ? static_cast<std::int64_t>(static_cast<std::int16_t>(r.u16()))
        : static_cast<std::int64_t>(r.s32());
    return static_cast<std::int64_t>(r.pos) + d;
  };

  const std::uint8_t op = r.u8();
  if (r.fail) return invalid();

  // -------- arithmetic family pattern: XX0..XX5 for 8 mnemonics
  if (op < 0x40 && (op & 7) < 6 && ((op & 0x38) >> 3) < 8 &&
      (op & 0xC0) == 0 /* always true for op<0x40 */) {
    const Mnemonic m = kArithFamily[(op >> 3) & 7];
    switch (op & 7) {
      case 0: {  // op rm8, r8
        ModRM mm = read_modrm(r);
        insn.ops[0] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
        insn.ops[1] = Operand::make_reg(reg8(xr(mm.reg), pre.rex));
        insn.op_width = RegWidth::k8Lo;
        return finish(m);
      }
      case 1: {  // op rmv, rv
        ModRM mm = read_modrm(r);
        insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
        insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
        return finish(m);
      }
      case 2: {  // op r8, rm8
        ModRM mm = read_modrm(r);
        insn.ops[1] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
        insn.ops[0] = Operand::make_reg(reg8(xr(mm.reg), pre.rex));
        insn.op_width = RegWidth::k8Lo;
        return finish(m);
      }
      case 3: {  // op rv, rmv
        ModRM mm = read_modrm(r);
        insn.ops[1] = decode_rm(r, mm, vw, mode, pre);
        insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
        return finish(m);
      }
      case 4:  // op al, imm8
        insn.ops[0] = Operand::make_reg(kAl);
        insn.ops[1] = Operand::make_imm(r.u8());
        insn.op_width = RegWidth::k8Lo;
        return finish(m);
      case 5:  // op eAX, immz
        insn.ops[0] = Operand::make_reg(reg_of_width(0, vw));
        insn.ops[1] = Operand::make_imm(imm_z());
        return finish(m);
    }
  }

  switch (op) {
    // ---- one-byte segment push/pop and BCD adjust (32-bit only: all of
    // these encodings were removed from the 64-bit opcode map)
    case 0x06: case 0x0E: case 0x16: case 0x1E:
      if (long_mode) return invalid();
      insn.op_width = RegWidth::k16;
      return finish(Mnemonic::kPush);
    case 0x07: case 0x17: case 0x1F:
      if (long_mode) return invalid();
      insn.op_width = RegWidth::k16;
      return finish(Mnemonic::kPop);
    case 0x27: return long_mode ? invalid() : finish(Mnemonic::kDaa);
    case 0x2F: return long_mode ? invalid() : finish(Mnemonic::kDas);
    case 0x37: return long_mode ? invalid() : finish(Mnemonic::kAaa);
    case 0x3F: return long_mode ? invalid() : finish(Mnemonic::kAas);

    // ---- inc/dec/push/pop register forms
    case 0x40: case 0x41: case 0x42: case 0x43:
    case 0x44: case 0x45: case 0x46: case 0x47:
      insn.ops[0] = Operand::make_reg(reg_of_width(op - 0x40, vw));
      return finish(Mnemonic::kInc);
    case 0x48: case 0x49: case 0x4A: case 0x4B:
    case 0x4C: case 0x4D: case 0x4E: case 0x4F:
      insn.ops[0] = Operand::make_reg(reg_of_width(op - 0x48, vw));
      return finish(Mnemonic::kDec);
    case 0x50: case 0x51: case 0x52: case 0x53:
    case 0x54: case 0x55: case 0x56: case 0x57:
      insn.ops[0] = Operand::make_reg(reg_of_width(xb(op - 0x50), stackw));
      insn.op_width = stackw;
      return finish(Mnemonic::kPush);
    case 0x58: case 0x59: case 0x5A: case 0x5B:
    case 0x5C: case 0x5D: case 0x5E: case 0x5F:
      insn.ops[0] = Operand::make_reg(reg_of_width(xb(op - 0x58), stackw));
      insn.op_width = stackw;
      return finish(Mnemonic::kPop);

    case 0x60: return long_mode ? invalid() : finish(Mnemonic::kPusha);
    case 0x61: return long_mode ? invalid() : finish(Mnemonic::kPopa);

    case 0x63: {  // movsxd rv, rm32 (64-bit mode; 32-bit ARPL stays undecoded)
      if (!long_mode) return invalid();
      ModRM mm = read_modrm(r);
      insn.ops[1] = decode_rm(r, mm, RegWidth::k32, mode, pre);
      insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
      return finish(Mnemonic::kMovsx);
    }

    case 0x68:  // push immz (imm is still 16/32-bit; operand is stack-wide)
      insn.ops[0] = Operand::make_imm(imm_z());
      insn.op_width = stackw;
      return finish(Mnemonic::kPush);
    case 0x69: {  // imul rv, rmv, immz
      ModRM mm = read_modrm(r);
      insn.ops[1] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
      insn.ops[2] = Operand::make_imm(imm_z());
      return finish(Mnemonic::kImul);
    }
    case 0x6A:  // push imm8 (sign-extended)
      insn.ops[0] = Operand::make_imm(r.s8());
      insn.op_width = stackw;
      return finish(Mnemonic::kPush);
    case 0x6B: {  // imul rv, rmv, imm8
      ModRM mm = read_modrm(r);
      insn.ops[1] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
      insn.ops[2] = Operand::make_imm(r.s8());
      return finish(Mnemonic::kImul);
    }
    case 0x6C: case 0x6D:  // ins
      insn.op_width = op == 0x6C ? RegWidth::k8Lo : vw;
      return finish(Mnemonic::kIn);
    case 0x6E: case 0x6F:  // outs
      insn.op_width = op == 0x6E ? RegWidth::k8Lo : vw;
      return finish(Mnemonic::kOut);

    // ---- short conditional jumps
    case 0x70: case 0x71: case 0x72: case 0x73:
    case 0x74: case 0x75: case 0x76: case 0x77:
    case 0x78: case 0x79: case 0x7A: case 0x7B:
    case 0x7C: case 0x7D: case 0x7E: case 0x7F:
      insn.cond = static_cast<Cond>(op - 0x70);
      insn.ops[0] = Operand::make_rel(rel8_target());
      return finish(Mnemonic::kJcc);

    // ---- immediate group 1
    case 0x80: case 0x82: {  // op rm8, imm8 (0x82 is the documented alias)
      if (op == 0x82 && long_mode) return invalid();  // alias removed in 64-bit
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
      insn.ops[1] = Operand::make_imm(r.u8());
      insn.op_width = RegWidth::k8Lo;
      return finish(kGroup1[mm.reg]);
    }
    case 0x81: {  // op rmv, immz
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[1] = Operand::make_imm(imm_z());
      return finish(kGroup1[mm.reg]);
    }
    case 0x83: {  // op rmv, imm8 sign-extended
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[1] = Operand::make_imm(r.s8());
      return finish(kGroup1[mm.reg]);
    }

    case 0x84: {  // test rm8, r8
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
      insn.ops[1] = Operand::make_reg(reg8(xr(mm.reg), pre.rex));
      insn.op_width = RegWidth::k8Lo;
      return finish(Mnemonic::kTest);
    }
    case 0x85: {  // test rmv, rv
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
      return finish(Mnemonic::kTest);
    }
    case 0x86: {  // xchg rm8, r8
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
      insn.ops[1] = Operand::make_reg(reg8(xr(mm.reg), pre.rex));
      insn.op_width = RegWidth::k8Lo;
      return finish(Mnemonic::kXchg);
    }
    case 0x87: {  // xchg rmv, rv
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
      return finish(Mnemonic::kXchg);
    }

    // ---- mov forms
    case 0x88: {
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
      insn.ops[1] = Operand::make_reg(reg8(xr(mm.reg), pre.rex));
      insn.op_width = RegWidth::k8Lo;
      return finish(Mnemonic::kMov);
    }
    case 0x89: {
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
      return finish(Mnemonic::kMov);
    }
    case 0x8A: {
      ModRM mm = read_modrm(r);
      insn.ops[1] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
      insn.ops[0] = Operand::make_reg(reg8(xr(mm.reg), pre.rex));
      insn.op_width = RegWidth::k8Lo;
      return finish(Mnemonic::kMov);
    }
    case 0x8B: {
      ModRM mm = read_modrm(r);
      insn.ops[1] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
      return finish(Mnemonic::kMov);
    }
    case 0x8D: {  // lea rv, m
      ModRM mm = read_modrm(r);
      if (mm.mod == 3) return invalid();
      insn.ops[1] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
      return finish(Mnemonic::kLea);
    }
    case 0x8F: {  // pop rmv (group 1A: reg field must be 0)
      ModRM mm = read_modrm(r);
      if (mm.reg != 0) return invalid();
      insn.ops[0] = decode_rm(r, mm, stackw, mode, pre);
      insn.op_width = stackw;
      return finish(Mnemonic::kPop);
    }

    case 0x90:
      return finish(Mnemonic::kNop);
    case 0x91: case 0x92: case 0x93:
    case 0x94: case 0x95: case 0x96: case 0x97:
      insn.ops[0] = Operand::make_reg(reg_of_width(0, vw));
      insn.ops[1] = Operand::make_reg(reg_of_width(xb(op - 0x90), vw));
      return finish(Mnemonic::kXchg);

    case 0x98: return finish(Mnemonic::kCwde);
    case 0x99: return finish(Mnemonic::kCdq);
    case 0x9B: return finish(Mnemonic::kWait);
    case 0x9C: return finish(Mnemonic::kPushf);
    case 0x9D: return finish(Mnemonic::kPopf);
    case 0x9E: return finish(Mnemonic::kSahf);
    case 0x9F: return finish(Mnemonic::kLahf);

    // ---- moffs forms (64-bit mode uses a 64-bit moffs; refuse rather
    // than mis-decode, as with the 16-bit addressing prefix)
    case 0xA0: case 0xA1: {
      if (long_mode) return invalid();
      MemRef mem;
      mem.disp = r.s32();
      mem.width = op == 0xA0 ? RegWidth::k8Lo : vw;
      insn.ops[0] = Operand::make_reg(op == 0xA0 ? kAl : reg_of_width(0, vw));
      insn.ops[1] = Operand::make_mem(mem);
      insn.op_width = mem.width;
      return finish(Mnemonic::kMov);
    }
    case 0xA2: case 0xA3: {
      if (long_mode) return invalid();
      MemRef mem;
      mem.disp = r.s32();
      mem.width = op == 0xA2 ? RegWidth::k8Lo : vw;
      insn.ops[0] = Operand::make_mem(mem);
      insn.ops[1] = Operand::make_reg(op == 0xA2 ? kAl : reg_of_width(0, vw));
      insn.op_width = mem.width;
      return finish(Mnemonic::kMov);
    }

    // ---- string operations (operands implicit in esi/edi/eax/ecx)
    case 0xA4: insn.op_width = RegWidth::k8Lo; return finish(Mnemonic::kMovs);
    case 0xA5: return finish(Mnemonic::kMovs);
    case 0xA6: insn.op_width = RegWidth::k8Lo; return finish(Mnemonic::kCmps);
    case 0xA7: return finish(Mnemonic::kCmps);
    case 0xA8:
      insn.ops[0] = Operand::make_reg(kAl);
      insn.ops[1] = Operand::make_imm(r.u8());
      insn.op_width = RegWidth::k8Lo;
      return finish(Mnemonic::kTest);
    case 0xA9:
      insn.ops[0] = Operand::make_reg(reg_of_width(0, vw));
      insn.ops[1] = Operand::make_imm(imm_z());
      return finish(Mnemonic::kTest);
    case 0xAA: insn.op_width = RegWidth::k8Lo; return finish(Mnemonic::kStos);
    case 0xAB: return finish(Mnemonic::kStos);
    case 0xAC: insn.op_width = RegWidth::k8Lo; return finish(Mnemonic::kLods);
    case 0xAD: return finish(Mnemonic::kLods);
    case 0xAE: insn.op_width = RegWidth::k8Lo; return finish(Mnemonic::kScas);
    case 0xAF: return finish(Mnemonic::kScas);

    // ---- mov reg, imm
    case 0xB0: case 0xB1: case 0xB2: case 0xB3:
    case 0xB4: case 0xB5: case 0xB6: case 0xB7:
      insn.ops[0] = Operand::make_reg(reg8(xb(op - 0xB0), pre.rex));
      insn.ops[1] = Operand::make_imm(r.u8());
      insn.op_width = RegWidth::k8Lo;
      return finish(Mnemonic::kMov);
    case 0xB8: case 0xB9: case 0xBA: case 0xBB:
    case 0xBC: case 0xBD: case 0xBE: case 0xBF:
      insn.ops[0] = Operand::make_reg(reg_of_width(xb(op - 0xB8), vw));
      // B8+r is the one instruction with a true 64-bit immediate.
      insn.ops[1] = Operand::make_imm(
          pre.rex_w ? static_cast<std::int64_t>(r.u64()) : imm_z());
      return finish(Mnemonic::kMov);

    // ---- shift groups
    case 0xC0: case 0xC1: {
      ModRM mm = read_modrm(r);
      const RegWidth w = op == 0xC0 ? RegWidth::k8Lo : vw;
      insn.ops[0] = decode_rm(r, mm, w, mode, pre);
      insn.ops[1] = Operand::make_imm(r.u8() & 0x1f);
      insn.op_width = w;
      return finish(kShiftGroup[mm.reg]);
    }
    case 0xD0: case 0xD1: {
      ModRM mm = read_modrm(r);
      const RegWidth w = op == 0xD0 ? RegWidth::k8Lo : vw;
      insn.ops[0] = decode_rm(r, mm, w, mode, pre);
      insn.ops[1] = Operand::make_imm(1);
      insn.op_width = w;
      return finish(kShiftGroup[mm.reg]);
    }
    case 0xD2: case 0xD3: {
      ModRM mm = read_modrm(r);
      const RegWidth w = op == 0xD2 ? RegWidth::k8Lo : vw;
      insn.ops[0] = decode_rm(r, mm, w, mode, pre);
      insn.ops[1] = Operand::make_reg(kCl);
      insn.op_width = w;
      return finish(kShiftGroup[mm.reg]);
    }

    case 0xC2:
      insn.ops[0] = Operand::make_imm(r.u16());
      return finish(Mnemonic::kRet);
    case 0xC3:
      return finish(Mnemonic::kRet);

    case 0xC6: {  // mov rm8, imm8
      ModRM mm = read_modrm(r);
      if (mm.reg != 0) return invalid();
      insn.ops[0] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
      insn.ops[1] = Operand::make_imm(r.u8());
      insn.op_width = RegWidth::k8Lo;
      return finish(Mnemonic::kMov);
    }
    case 0xC7: {  // mov rmv, immz
      ModRM mm = read_modrm(r);
      if (mm.reg != 0) return invalid();
      insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
      insn.ops[1] = Operand::make_imm(imm_z());
      return finish(Mnemonic::kMov);
    }

    case 0xC8:  // enter imm16, imm8
      insn.ops[0] = Operand::make_imm(r.u16());
      insn.ops[1] = Operand::make_imm(r.u8());
      return finish(Mnemonic::kEnter);
    case 0xC9: return finish(Mnemonic::kLeave);
    case 0xCA:
      insn.ops[0] = Operand::make_imm(r.u16());
      return finish(Mnemonic::kRetf);
    case 0xCB: return finish(Mnemonic::kRetf);
    case 0xCC: return finish(Mnemonic::kInt3);
    case 0xCD:
      insn.ops[0] = Operand::make_imm(r.u8());
      return finish(Mnemonic::kInt);
    case 0xCE: return long_mode ? invalid() : finish(Mnemonic::kInto);
    case 0xCF: return finish(Mnemonic::kIret);

    case 0xD6:  // undocumented; real shellcode uses it (32-bit only)
      return long_mode ? invalid() : finish(Mnemonic::kSalc);
    case 0xD7: return finish(Mnemonic::kXlat);

    // Minimal x87: the fnstenv GetPC idiom needs one FPU instruction to
    // load FIP (any D9 constant-load) and fnstenv itself (D9 /6 mem).
    // Everything else in the x87 escape range stays undecoded.
    case 0xD9: {
      const auto peeked = r.buf.size() > r.pos ? r.buf[r.pos] : 0;
      if (peeked >= 0xE8 && peeked <= 0xEE) {  // fld1/fldl2t/.../fldz
        r.pos++;
        return finish(Mnemonic::kFpuNop);
      }
      ModRM mm = read_modrm(r);
      if (mm.mod != 3 && mm.reg == 6) {  // fnstenv m28
        insn.ops[0] = decode_rm(r, mm, RegWidth::k32, mode, pre);
        return finish(Mnemonic::kFnstenv);
      }
      return invalid();
    }

    // ---- loops and port I/O
    case 0xE0:
      insn.ops[0] = Operand::make_rel(rel8_target());
      return finish(Mnemonic::kLoopne);
    case 0xE1:
      insn.ops[0] = Operand::make_rel(rel8_target());
      return finish(Mnemonic::kLoope);
    case 0xE2:
      insn.ops[0] = Operand::make_rel(rel8_target());
      return finish(Mnemonic::kLoop);
    case 0xE3:
      insn.ops[0] = Operand::make_rel(rel8_target());
      return finish(Mnemonic::kJecxz);
    case 0xE4: case 0xE5:
      insn.ops[0] = Operand::make_imm(r.u8());
      return finish(Mnemonic::kIn);
    case 0xE6: case 0xE7:
      insn.ops[0] = Operand::make_imm(r.u8());
      return finish(Mnemonic::kOut);
    case 0xEC: case 0xED: return finish(Mnemonic::kIn);
    case 0xEE: case 0xEF: return finish(Mnemonic::kOut);

    case 0xE8:
      insn.ops[0] = Operand::make_rel(relz_target());
      return finish(Mnemonic::kCall);
    case 0xE9:
      insn.ops[0] = Operand::make_rel(relz_target());
      return finish(Mnemonic::kJmp);
    case 0xEB:
      insn.ops[0] = Operand::make_rel(rel8_target());
      return finish(Mnemonic::kJmp);

    case 0xF4: return finish(Mnemonic::kHlt);
    case 0xF5: return finish(Mnemonic::kCmc);

    // ---- unary group 3
    case 0xF6: case 0xF7: {
      ModRM mm = read_modrm(r);
      const RegWidth w = op == 0xF6 ? RegWidth::k8Lo : vw;
      insn.ops[0] = decode_rm(r, mm, w, mode, pre);
      insn.op_width = w;
      switch (mm.reg) {
        case 0: case 1:  // test rm, imm
          insn.ops[1] = Operand::make_imm(op == 0xF6 ? static_cast<std::int64_t>(r.u8())
                                                     : imm_z());
          return finish(Mnemonic::kTest);
        case 2: return finish(Mnemonic::kNot);
        case 3: return finish(Mnemonic::kNeg);
        case 4: return finish(Mnemonic::kMul);
        case 5: return finish(Mnemonic::kImul);
        case 6: return finish(Mnemonic::kDiv);
        case 7: return finish(Mnemonic::kIdiv);
      }
      return invalid();
    }

    case 0xF8: return finish(Mnemonic::kClc);
    case 0xF9: return finish(Mnemonic::kStc);
    case 0xFA: return finish(Mnemonic::kCli);
    case 0xFB: return finish(Mnemonic::kSti);
    case 0xFC: return finish(Mnemonic::kCld);
    case 0xFD: return finish(Mnemonic::kStd);

    case 0xFE: {  // group 4: inc/dec rm8
      ModRM mm = read_modrm(r);
      insn.ops[0] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
      insn.op_width = RegWidth::k8Lo;
      if (mm.reg == 0) return finish(Mnemonic::kInc);
      if (mm.reg == 1) return finish(Mnemonic::kDec);
      return invalid();
    }
    case 0xFF: {  // group 5
      ModRM mm = read_modrm(r);
      // call/jmp/push operands default to 64-bit in long mode.
      const bool stacky = mm.reg == 2 || mm.reg == 4 || mm.reg == 6;
      insn.ops[0] = decode_rm(r, mm, stacky ? stackw : vw, mode, pre);
      switch (mm.reg) {
        case 0: return finish(Mnemonic::kInc);
        case 1: return finish(Mnemonic::kDec);
        case 2: return finish(Mnemonic::kCall);  // indirect
        case 4: return finish(Mnemonic::kJmp);   // indirect
        case 6: return finish(Mnemonic::kPush);
        default: return invalid();  // far call/jmp not modeled
      }
    }

    // ---- two-byte opcode map
    case 0x0F: {
      const std::uint8_t op2 = r.u8();
      if (r.fail) return invalid();

      // jcc rel32
      if (op2 >= 0x80 && op2 <= 0x8F) {
        insn.cond = static_cast<Cond>(op2 - 0x80);
        insn.ops[0] = Operand::make_rel(relz_target());
        return finish(Mnemonic::kJcc);
      }
      // setcc rm8
      if (op2 >= 0x90 && op2 <= 0x9F) {
        ModRM mm = read_modrm(r);
        insn.cond = static_cast<Cond>(op2 - 0x90);
        insn.ops[0] = decode_rm(r, mm, RegWidth::k8Lo, mode, pre);
        insn.op_width = RegWidth::k8Lo;
        return finish(Mnemonic::kSetcc);
      }
      // cmovcc rv, rmv
      if (op2 >= 0x40 && op2 <= 0x4F) {
        ModRM mm = read_modrm(r);
        insn.cond = static_cast<Cond>(op2 - 0x40);
        insn.ops[1] = decode_rm(r, mm, vw, mode, pre);
        insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
        return finish(Mnemonic::kCmov);
      }
      // bswap r32/r64
      if (op2 >= 0xC8 && op2 <= 0xCF) {
        insn.ops[0] = Operand::make_reg(
            long_mode ? reg_of_width(xb(op2 - 0xC8),
                                     pre.rex_w ? RegWidth::k64 : RegWidth::k32)
                      : reg32(op2 - 0xC8));
        return finish(Mnemonic::kBswap);
      }

      switch (op2) {
        case 0x05:  // syscall (64-bit mode only)
          return long_mode ? finish(Mnemonic::kSyscall) : invalid();
        case 0x1F: {  // multi-byte nop: nop rm
          ModRM mm = read_modrm(r);
          insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
          return finish(Mnemonic::kNop);
        }
        case 0x31: return finish(Mnemonic::kRdtsc);
        case 0xA2: return finish(Mnemonic::kCpuid);
        case 0xA3: case 0xAB: case 0xB3: case 0xBB: {  // bt/bts/btr/btc rm, r
          ModRM mm = read_modrm(r);
          insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
          insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
          switch (op2) {
            case 0xA3: return finish(Mnemonic::kBt);
            case 0xAB: return finish(Mnemonic::kBts);
            case 0xB3: return finish(Mnemonic::kBtr);
            default: return finish(Mnemonic::kBtc);
          }
        }
        case 0xA4: case 0xAC: {  // shld/shrd rm, r, imm8
          ModRM mm = read_modrm(r);
          insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
          insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
          insn.ops[2] = Operand::make_imm(r.u8());
          return finish(op2 == 0xA4 ? Mnemonic::kShld : Mnemonic::kShrd);
        }
        case 0xA5: case 0xAD: {  // shld/shrd rm, r, cl
          ModRM mm = read_modrm(r);
          insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
          insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
          insn.ops[2] = Operand::make_reg(kCl);
          return finish(op2 == 0xA5 ? Mnemonic::kShld : Mnemonic::kShrd);
        }
        case 0xAF: {  // imul rv, rmv
          ModRM mm = read_modrm(r);
          insn.ops[1] = decode_rm(r, mm, vw, mode, pre);
          insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
          return finish(Mnemonic::kImul);
        }
        case 0xB0: case 0xB1: {  // cmpxchg
          ModRM mm = read_modrm(r);
          const RegWidth w = op2 == 0xB0 ? RegWidth::k8Lo : vw;
          insn.ops[0] = decode_rm(r, mm, w, mode, pre);
          insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), w));
          insn.op_width = w;
          return finish(Mnemonic::kCmpxchg);
        }
        case 0xB6: case 0xB7: {  // movzx rv, rm8/rm16
          ModRM mm = read_modrm(r);
          insn.ops[1] = decode_rm(r, mm, op2 == 0xB6 ? RegWidth::k8Lo : RegWidth::k16, mode, pre);
          insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
          return finish(Mnemonic::kMovzx);
        }
        case 0xBE: case 0xBF: {  // movsx
          ModRM mm = read_modrm(r);
          insn.ops[1] = decode_rm(r, mm, op2 == 0xBE ? RegWidth::k8Lo : RegWidth::k16, mode, pre);
          insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
          return finish(Mnemonic::kMovsx);
        }
        case 0xBA: {  // group 8: bt/bts/btr/btc rm, imm8
          ModRM mm = read_modrm(r);
          if (mm.reg < 4) return invalid();
          insn.ops[0] = decode_rm(r, mm, vw, mode, pre);
          insn.ops[1] = Operand::make_imm(r.u8());
          switch (mm.reg) {
            case 4: return finish(Mnemonic::kBt);
            case 5: return finish(Mnemonic::kBts);
            case 6: return finish(Mnemonic::kBtr);
            default: return finish(Mnemonic::kBtc);
          }
        }
        case 0xBC: case 0xBD: {  // bsf/bsr rv, rmv
          ModRM mm = read_modrm(r);
          insn.ops[1] = decode_rm(r, mm, vw, mode, pre);
          insn.ops[0] = Operand::make_reg(reg_of_width(xr(mm.reg), vw));
          return finish(op2 == 0xBC ? Mnemonic::kBsf : Mnemonic::kBsr);
        }
        case 0xC0: case 0xC1: {  // xadd
          ModRM mm = read_modrm(r);
          const RegWidth w = op2 == 0xC0 ? RegWidth::k8Lo : vw;
          insn.ops[0] = decode_rm(r, mm, w, mode, pre);
          insn.ops[1] = Operand::make_reg(reg_of_width(xr(mm.reg), w));
          insn.op_width = w;
          return finish(Mnemonic::kXadd);
        }
        default:
          return invalid();
      }
    }

    default:
      return invalid();
  }
}

void linear_sweep(util::ByteView code, std::size_t offset, std::size_t max_insns,
                  std::vector<Instruction>& out, Mode mode) {
  out.clear();
  while (offset < code.size() && out.size() < max_insns) {
    Instruction insn = decode(code, offset, mode);
    if (!insn.valid()) break;
    offset = insn.end_offset();
    out.push_back(std::move(insn));
  }
}

std::vector<Instruction> linear_sweep(util::ByteView code, std::size_t offset,
                                      std::size_t max_insns, Mode mode) {
  std::vector<Instruction> out;
  linear_sweep(code, offset, max_insns, out, mode);
  return out;
}

}  // namespace senids::arch
