#include "arch/arch.hpp"

namespace senids::arch {

namespace {

// Linux i386: int 0x80, number in eax, args ebx,ecx,edx,esi,edi,ebp.
constexpr SyscallConvention kConv32[] = {{
    0x80,
    RegFamily::kAx,
    {RegFamily::kBx, RegFamily::kCx, RegFamily::kDx, RegFamily::kSi,
     RegFamily::kDi, RegFamily::kBp},
    6,
}};

// Linux x86-64: `syscall`, number in rax, args rdi,rsi,rdx,r10,r8,r9.
constexpr SyscallConvention kConv64[] = {{
    0x100,
    RegFamily::kAx,
    {RegFamily::kDi, RegFamily::kSi, RegFamily::kDx, RegFamily::kR10,
     RegFamily::kR8, RegFamily::kR9},
    6,
}};

}  // namespace

struct ArchRegistry {
  // NOLINTNEXTLINE(readability-identifier-naming)
  static const Arch& instance(Mode mode) noexcept {
    static const Arch k32{"x86_32", Mode::k32};
    static const Arch k64{"x86_64", Mode::k64};
    return mode == Mode::k64 ? k64 : k32;
  }
};

const Arch& Arch::x86_32() noexcept { return ArchRegistry::instance(Mode::k32); }
const Arch& Arch::x86_64() noexcept { return ArchRegistry::instance(Mode::k64); }

const Arch& Arch::of_mode(Mode mode) noexcept { return ArchRegistry::instance(mode); }

const Arch* Arch::by_name(std::string_view name) noexcept {
  for (const Arch* a : all()) {
    if (a->name() == name) return a;
  }
  return nullptr;
}

std::span<const Arch* const> Arch::all() noexcept {
  static const Arch* const kAll[] = {&x86_32(), &x86_64()};
  return kAll;
}

std::span<const SyscallConvention> Arch::syscall_conventions() const noexcept {
  return mode_ == Mode::k64 ? std::span<const SyscallConvention>(kConv64)
                            : std::span<const SyscallConvention>(kConv32);
}

}  // namespace senids::arch
