#include "arch/format.hpp"

#include <cstdio>

namespace senids::arch {

std::string_view mnemonic_name(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kInvalid: return "(bad)";
    case Mnemonic::kMov: return "mov";
    case Mnemonic::kMovzx: return "movzx";
    case Mnemonic::kMovsx: return "movsx";
    case Mnemonic::kLea: return "lea";
    case Mnemonic::kXchg: return "xchg";
    case Mnemonic::kPush: return "push";
    case Mnemonic::kPop: return "pop";
    case Mnemonic::kPusha: return "pusha";
    case Mnemonic::kPopa: return "popa";
    case Mnemonic::kPushf: return "pushf";
    case Mnemonic::kPopf: return "popf";
    case Mnemonic::kLahf: return "lahf";
    case Mnemonic::kSahf: return "sahf";
    case Mnemonic::kBswap: return "bswap";
    case Mnemonic::kXlat: return "xlat";
    case Mnemonic::kAdd: return "add";
    case Mnemonic::kAdc: return "adc";
    case Mnemonic::kSub: return "sub";
    case Mnemonic::kSbb: return "sbb";
    case Mnemonic::kInc: return "inc";
    case Mnemonic::kDec: return "dec";
    case Mnemonic::kNeg: return "neg";
    case Mnemonic::kCmp: return "cmp";
    case Mnemonic::kMul: return "mul";
    case Mnemonic::kImul: return "imul";
    case Mnemonic::kDiv: return "div";
    case Mnemonic::kIdiv: return "idiv";
    case Mnemonic::kCwde: return "cwde";
    case Mnemonic::kCdq: return "cdq";
    case Mnemonic::kAaa: return "aaa";
    case Mnemonic::kAas: return "aas";
    case Mnemonic::kDaa: return "daa";
    case Mnemonic::kDas: return "das";
    case Mnemonic::kAnd: return "and";
    case Mnemonic::kOr: return "or";
    case Mnemonic::kXor: return "xor";
    case Mnemonic::kNot: return "not";
    case Mnemonic::kTest: return "test";
    case Mnemonic::kShl: return "shl";
    case Mnemonic::kShr: return "shr";
    case Mnemonic::kSar: return "sar";
    case Mnemonic::kRol: return "rol";
    case Mnemonic::kRor: return "ror";
    case Mnemonic::kRcl: return "rcl";
    case Mnemonic::kRcr: return "rcr";
    case Mnemonic::kShld: return "shld";
    case Mnemonic::kShrd: return "shrd";
    case Mnemonic::kBt: return "bt";
    case Mnemonic::kBts: return "bts";
    case Mnemonic::kBtr: return "btr";
    case Mnemonic::kBtc: return "btc";
    case Mnemonic::kBsf: return "bsf";
    case Mnemonic::kBsr: return "bsr";
    case Mnemonic::kJmp: return "jmp";
    case Mnemonic::kJcc: return "j";
    case Mnemonic::kCall: return "call";
    case Mnemonic::kRet: return "ret";
    case Mnemonic::kRetf: return "retf";
    case Mnemonic::kLoop: return "loop";
    case Mnemonic::kLoope: return "loope";
    case Mnemonic::kLoopne: return "loopne";
    case Mnemonic::kJecxz: return "jecxz";
    case Mnemonic::kInt: return "int";
    case Mnemonic::kInt3: return "int3";
    case Mnemonic::kInto: return "into";
    case Mnemonic::kIret: return "iret";
    case Mnemonic::kEnter: return "enter";
    case Mnemonic::kLeave: return "leave";
    case Mnemonic::kMovs: return "movs";
    case Mnemonic::kCmps: return "cmps";
    case Mnemonic::kStos: return "stos";
    case Mnemonic::kLods: return "lods";
    case Mnemonic::kScas: return "scas";
    case Mnemonic::kNop: return "nop";
    case Mnemonic::kClc: return "clc";
    case Mnemonic::kStc: return "stc";
    case Mnemonic::kCmc: return "cmc";
    case Mnemonic::kCld: return "cld";
    case Mnemonic::kStd: return "std";
    case Mnemonic::kCli: return "cli";
    case Mnemonic::kSti: return "sti";
    case Mnemonic::kHlt: return "hlt";
    case Mnemonic::kWait: return "wait";
    case Mnemonic::kSetcc: return "set";
    case Mnemonic::kCmpxchg: return "cmpxchg";
    case Mnemonic::kXadd: return "xadd";
    case Mnemonic::kCpuid: return "cpuid";
    case Mnemonic::kRdtsc: return "rdtsc";
    case Mnemonic::kIn: return "in";
    case Mnemonic::kOut: return "out";
    case Mnemonic::kSalc: return "salc";
    case Mnemonic::kCmov: return "cmov";
    case Mnemonic::kSyscall: return "syscall";
    case Mnemonic::kFpuNop: return "fldz";
    case Mnemonic::kFnstenv: return "fnstenv";
  }
  return "?";
}

std::string_view cond_suffix(Cond c) noexcept {
  switch (c) {
    case Cond::kO: return "o";
    case Cond::kNo: return "no";
    case Cond::kB: return "b";
    case Cond::kAe: return "ae";
    case Cond::kE: return "e";
    case Cond::kNe: return "ne";
    case Cond::kBe: return "be";
    case Cond::kA: return "a";
    case Cond::kS: return "s";
    case Cond::kNs: return "ns";
    case Cond::kP: return "p";
    case Cond::kNp: return "np";
    case Cond::kL: return "l";
    case Cond::kGe: return "ge";
    case Cond::kLe: return "le";
    case Cond::kG: return "g";
  }
  return "?";
}

namespace {

const char* width_ptr_name(RegWidth w) {
  switch (w) {
    case RegWidth::k8Lo:
    case RegWidth::k8Hi:
      return "byte ptr ";
    case RegWidth::k16:
      return "word ptr ";
    case RegWidth::k32:
      return "dword ptr ";
    case RegWidth::k64:
      return "qword ptr ";
  }
  return "";
}

std::string format_operand(const Operand& op) {
  char buf[64];
  switch (op.kind) {
    case OperandKind::kNone:
      return "";
    case OperandKind::kReg:
      return std::string(op.reg.name());
    case OperandKind::kImm:
      if (op.imm < 0) {
        std::snprintf(buf, sizeof buf, "-0x%llx",
                      static_cast<unsigned long long>(-op.imm));
      } else {
        std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(op.imm));
      }
      return buf;
    case OperandKind::kRel:
      std::snprintf(buf, sizeof buf, "loc_%llx", static_cast<unsigned long long>(op.imm));
      return buf;
    case OperandKind::kMem: {
      std::string out = width_ptr_name(op.mem.width);
      out.push_back('[');
      bool need_plus = false;
      if (op.mem.rip) {
        out += "rip";
        need_plus = true;
      }
      if (op.mem.base) {
        out += op.mem.base->name();
        need_plus = true;
      }
      if (op.mem.index) {
        if (need_plus) out += " + ";
        out += op.mem.index->name();
        if (op.mem.scale != 1) {
          std::snprintf(buf, sizeof buf, "*%u", op.mem.scale);
          out += buf;
        }
        need_plus = true;
      }
      if (op.mem.disp != 0 || !need_plus) {
        if (need_plus) {
          std::snprintf(buf, sizeof buf, op.mem.disp < 0 ? " - 0x%x" : " + 0x%x",
                        static_cast<unsigned>(op.mem.disp < 0 ? -op.mem.disp : op.mem.disp));
        } else {
          std::snprintf(buf, sizeof buf, "0x%x", static_cast<unsigned>(op.mem.disp));
        }
        out += buf;
      }
      out.push_back(']');
      return out;
    }
  }
  return "";
}

}  // namespace

std::string format(const Instruction& insn) {
  std::string out;
  if (insn.prefixes.lock) out += "lock ";
  if (insn.prefixes.rep) out += "rep ";
  if (insn.prefixes.repne) out += "repne ";
  out += mnemonic_name(insn.mnemonic);
  if (insn.mnemonic == Mnemonic::kJcc || insn.mnemonic == Mnemonic::kSetcc ||
      insn.mnemonic == Mnemonic::kCmov) {
    out += cond_suffix(insn.cond);
  }
  // Width-suffix the implicit string ops the way debuggers do (movsb/movsd).
  switch (insn.mnemonic) {
    case Mnemonic::kMovs:
    case Mnemonic::kCmps:
    case Mnemonic::kStos:
    case Mnemonic::kLods:
    case Mnemonic::kScas:
      out += insn.op_width == RegWidth::k8Lo ? "b"
             : insn.op_width == RegWidth::k16 ? "w"
             : insn.op_width == RegWidth::k64 ? "q" : "d";
      break;
    default:
      break;
  }
  bool first = true;
  for (const Operand& op : insn.ops) {
    if (op.kind == OperandKind::kNone) break;
    out += first ? " " : ", ";
    out += format_operand(op);
    first = false;
  }
  return out;
}

std::string format_listing(const std::vector<Instruction>& insns) {
  std::string out;
  char buf[32];
  for (const Instruction& insn : insns) {
    std::snprintf(buf, sizeof buf, "%08zx:  ", insn.offset);
    out += buf;
    out += format(insn);
    out.push_back('\n');
  }
  return out;
}

}  // namespace senids::arch
