// Shellcode-oriented code discovery. Network payloads carry code at
// unknown offsets, so the scanner (a) finds plausible decode runs via a
// right-to-left dynamic program over the whole buffer, and (b) produces
// the *execution-order* instruction stream from an entry point by
// following unconditional jumps — which is exactly the normalization that
// defeats the out-of-order obfuscation of Figure 1(c) in the paper.
#pragma once

#include <vector>

#include "util/bytes.hpp"
#include "arch/decoder.hpp"

namespace senids::arch {

/// A maximal linear decode run.
struct CodeRun {
  std::size_t start = 0;
  std::size_t insn_count = 0;
  std::size_t byte_len = 0;
};

/// Reusable working memory for the scanner. find_code_runs sizes two
/// dynamic-programming arrays and a tail-suppression bitmap to the frame
/// length, and execution_trace tracks visited offsets — all allocation
/// the analysis hot loop would otherwise repeat per frame. A worker
/// keeps one ScanScratch and passes it to every call; the buffers grow
/// to the largest frame seen and are then reused allocation-free.
struct ScanScratch {
  std::vector<std::uint32_t> run_len;
  std::vector<std::uint32_t> next;
  std::vector<char> is_tail;
  /// Generation-stamped visited set for execution_trace: a slot is
  /// "visited" iff it equals visit_gen, so starting a new trace is one
  /// increment instead of an O(frame) clear (frames are traced from
  /// thousands of entry points).
  std::vector<std::uint32_t> visited;
  std::uint32_t visit_gen = 0;
};

/// Find decode runs of at least `min_insns` instructions. Runs contained
/// in a longer run (same synchronization) are suppressed, so the result
/// is a small set of candidate shellcode entry points.
std::vector<CodeRun> find_code_runs(util::ByteView code, std::size_t min_insns = 6,
                                    Mode mode = Mode::k32);

/// Buffer-reusing form: clears and fills `out` (capacity preserved),
/// using `scratch` for the internal arrays instead of allocating.
void find_code_runs(util::ByteView code, std::size_t min_insns, std::vector<CodeRun>& out,
                    ScanScratch& scratch, Mode mode = Mode::k32);

/// Execution-order trace from `entry`: decodes, then follows unconditional
/// jmps with in-buffer targets; conditional branches and loops fall
/// through. Stops at invalid bytes, flow-ending instructions, buffer exit,
/// an already-visited offset (loop closure), or `max_insns`.
/// The returned sequence is the de-obfuscated instruction stream handed to
/// the IR lifter.
std::vector<Instruction> execution_trace(util::ByteView code, std::size_t entry,
                                         std::size_t max_insns = 4096,
                                         Mode mode = Mode::k32);

/// Buffer-reusing form: clears and fills `out` (capacity preserved),
/// using `scratch.visited` for the loop-closure bitmap.
void execution_trace(util::ByteView code, std::size_t entry, std::size_t max_insns,
                     std::vector<Instruction>& out, ScanScratch& scratch,
                     Mode mode = Mode::k32);

}  // namespace senids::arch
