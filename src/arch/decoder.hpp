// x86 instruction decoder (IA-32 and x86-64 long mode). Replaces the
// commercial disassembler (IDA Pro) used by the paper. Coverage: the full
// one-byte opcode map except x87/BCD/far-pointer forms, the two-byte (0F)
// opcodes that appear in compiler output and shellcode, all ModRM/SIB
// addressing modes, the operand-size prefix, and — in Mode::k64 — REX
// prefixes, RIP-relative addressing, default-64 stack operations, movsxd,
// `syscall`, and the 64-bit invalid-encoding set. Undecodable bytes yield
// an Instruction with mnemonic kInvalid and length >= 1, so linear sweeps
// always make progress and never fault on hostile input.
#pragma once

#include "util/bytes.hpp"
#include "arch/insn.hpp"

namespace senids::arch {

/// Decode the instruction starting at `offset` in `code`. Always returns;
/// check Instruction::valid(). Invalid encodings consume exactly one byte
/// so the caller can resynchronize.
Instruction decode(util::ByteView code, std::size_t offset, Mode mode = Mode::k32);

/// Decode at most `max_insns` instructions linearly from `offset`,
/// stopping at the first invalid byte or end of buffer.
std::vector<Instruction> linear_sweep(util::ByteView code, std::size_t offset = 0,
                                      std::size_t max_insns = SIZE_MAX,
                                      Mode mode = Mode::k32);

/// Buffer-reusing form: clears and refills `out` (capacity preserved),
/// for callers that sweep many runs in a loop.
void linear_sweep(util::ByteView code, std::size_t offset, std::size_t max_insns,
                  std::vector<Instruction>& out, Mode mode = Mode::k32);

}  // namespace senids::arch
