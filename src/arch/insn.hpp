// Decoded-instruction model: mnemonics, operands, prefixes. This is the
// contract between the decoder and everything downstream (formatter, IR
// lifter, def/use analysis).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "arch/reg.hpp"

namespace senids::arch {

/// Decode mode: which instruction-set rules apply. k32 is classic IA-32;
/// k64 is x86-64 long mode (REX prefixes, default-64 stack ops,
/// RIP-relative addressing, a different invalid-opcode set).
enum class Mode : std::uint8_t { k32, k64 };

/// Mnemonics the decoder emits. kInvalid marks undecodable bytes: the
/// scanners treat it as a synchronization failure, never as a crash.
enum class Mnemonic : std::uint16_t {
  kInvalid = 0,
  // data movement
  kMov, kMovzx, kMovsx, kLea, kXchg, kPush, kPop, kPusha, kPopa, kPushf, kPopf,
  kLahf, kSahf, kBswap, kXlat,
  // arithmetic
  kAdd, kAdc, kSub, kSbb, kInc, kDec, kNeg, kCmp, kMul, kImul, kDiv, kIdiv,
  kCwde, kCdq, kAaa, kAas, kDaa, kDas,
  // logic
  kAnd, kOr, kXor, kNot, kTest,
  // shifts/rotates
  kShl, kShr, kSar, kRol, kRor, kRcl, kRcr, kShld, kShrd,
  // bit ops
  kBt, kBts, kBtr, kBtc, kBsf, kBsr,
  // control flow
  kJmp, kJcc, kCall, kRet, kRetf, kLoop, kLoope, kLoopne, kJecxz, kInt,
  kInt3, kInto, kIret, kEnter, kLeave,
  // string ops
  kMovs, kCmps, kStos, kLods, kScas,
  // flags and misc
  kNop, kClc, kStc, kCmc, kCld, kStd, kCli, kSti, kHlt, kWait, kSetcc,
  kCmpxchg, kXadd, kCpuid, kRdtsc, kIn, kOut, kSalc, kCmov,
  kSyscall,   // x86-64 `syscall` (0F 05); never emitted by the 32-bit decoder
  // Minimal x87 subset: just enough for the fnstenv GetPC idiom.
  kFpuNop,    // fld constants / fninit-style no-ops that set "last FPU insn"
  kFnstenv,   // store the 28-byte FPU environment (FIP at offset +12)
};

/// Condition codes for Jcc/SETcc, in opcode-nibble order.
enum class Cond : std::uint8_t {
  kO, kNo, kB, kAe, kE, kNe, kBe, kA, kS, kNs, kP, kNp, kL, kGe, kLe, kG
};

enum class OperandKind : std::uint8_t { kNone, kReg, kImm, kMem, kRel };

/// Memory operand: [base + index*scale + disp], any piece optional.
struct MemRef {
  std::optional<Reg> base;
  std::optional<Reg> index;
  std::uint8_t scale = 1;           // 1,2,4,8
  std::int32_t disp = 0;
  RegWidth width = RegWidth::k32;   // access width (byte/word/... ptr)
  /// 64-bit mode RIP-relative form ([rip + disp32]): the effective
  /// address is the end of the instruction plus disp, which the lifter
  /// and emulator resolve to a concrete in-buffer offset.
  bool rip = false;

  friend bool operator==(const MemRef&, const MemRef&) = default;
};

struct Operand {
  OperandKind kind = OperandKind::kNone;
  Reg reg{};              // kReg
  std::int64_t imm = 0;   // kImm (sign-extended) and kRel (absolute target offset)
  MemRef mem{};           // kMem

  static Operand none() { return {}; }
  static Operand make_reg(Reg r) {
    Operand o;
    o.kind = OperandKind::kReg;
    o.reg = r;
    return o;
  }
  static Operand make_imm(std::int64_t v) {
    Operand o;
    o.kind = OperandKind::kImm;
    o.imm = v;
    return o;
  }
  static Operand make_mem(MemRef m) {
    Operand o;
    o.kind = OperandKind::kMem;
    o.mem = m;
    return o;
  }
  static Operand make_rel(std::int64_t target) {
    Operand o;
    o.kind = OperandKind::kRel;
    o.imm = target;
    return o;
  }
};

/// Prefix bits observed before the opcode.
struct Prefixes {
  bool opsize = false;    // 0x66
  bool addrsize = false;  // 0x67
  bool lock = false;      // 0xF0
  bool rep = false;       // 0xF3
  bool repne = false;     // 0xF2
  bool segment = false;   // any of 26/2E/36/3E/64/65
  // REX fields (64-bit mode only; all false when no REX byte was seen).
  bool rex = false;       // any 40-4F byte immediately before the opcode
  bool rex_w = false;     // 64-bit operand size
  bool rex_r = false;     // ModRM.reg extension
  bool rex_x = false;     // SIB.index extension
  bool rex_b = false;     // ModRM.rm / SIB.base / opcode-reg extension
};

struct Instruction {
  std::size_t offset = 0;  // byte offset within the decoded buffer
  std::uint8_t length = 0; // encoded length in bytes
  Mnemonic mnemonic = Mnemonic::kInvalid;
  Cond cond = Cond::kO;    // meaningful for kJcc / kSetcc only
  Prefixes prefixes;
  std::array<Operand, 3> ops;
  /// Operation width for width-ambiguous mnemonics (string ops, push imm).
  RegWidth op_width = RegWidth::k32;
  /// Decode mode this instruction was produced under. Downstream
  /// consumers (def/use, lifter, emulator) key mode-dependent semantics
  /// off this field instead of taking a second parameter.
  Mode mode = Mode::k32;

  [[nodiscard]] bool valid() const noexcept { return mnemonic != Mnemonic::kInvalid; }
  [[nodiscard]] std::size_t end_offset() const noexcept { return offset + length; }

  [[nodiscard]] bool is_branch() const noexcept {
    switch (mnemonic) {
      case Mnemonic::kJmp:
      case Mnemonic::kJcc:
      case Mnemonic::kCall:
      case Mnemonic::kLoop:
      case Mnemonic::kLoope:
      case Mnemonic::kLoopne:
      case Mnemonic::kJecxz:
        return true;
      default:
        return false;
    }
  }

  /// Branch target as a buffer offset, when statically known.
  [[nodiscard]] std::optional<std::size_t> branch_target() const noexcept {
    if (!is_branch() || ops[0].kind != OperandKind::kRel) return std::nullopt;
    if (ops[0].imm < 0) return std::nullopt;  // jumps before the buffer
    return static_cast<std::size_t>(ops[0].imm);
  }

  /// True for instructions after which straight-line execution stops.
  [[nodiscard]] bool ends_flow() const noexcept {
    switch (mnemonic) {
      case Mnemonic::kRet:
      case Mnemonic::kRetf:
      case Mnemonic::kIret:
      case Mnemonic::kHlt:
        return true;
      case Mnemonic::kJmp:
        return true;  // unconditional; successor is the target only
      default:
        return false;
    }
  }
};

/// Human-readable mnemonic text ("mov", "jne", ...). For kJcc/kSetcc the
/// condition is folded into the text.
std::string_view mnemonic_name(Mnemonic m) noexcept;
std::string_view cond_suffix(Cond c) noexcept;

}  // namespace senids::arch
