#include "arch/defuse.hpp"

namespace senids::arch {

std::string RegSet::str() const {
  static constexpr std::string_view kNames[] = {
      "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
  std::string out;
  for (unsigned i = 0; i < 16; ++i) {
    if (bits_ & (1u << i)) {
      if (!out.empty()) out.push_back(',');
      out += kNames[i];
    }
  }
  return out;
}

namespace {

/// Fold a memory operand's address registers into `uses` and record the
/// access direction.
void touch_mem(const Operand& op, bool is_write, DefUse& du) noexcept {
  if (op.kind != OperandKind::kMem) return;
  if (op.mem.base) du.uses.add(*op.mem.base);
  if (op.mem.index) du.uses.add(*op.mem.index);
  (is_write ? du.mem_write : du.mem_read) = true;
}

/// Destination operand that is both read and written (add, xor, ...).
void rmw_dst(const Operand& op, DefUse& du) noexcept {
  if (op.kind == OperandKind::kReg) {
    du.defs.add(op.reg);
    du.uses.add(op.reg);
  } else if (op.kind == OperandKind::kMem) {
    touch_mem(op, /*is_write=*/true, du);
    du.mem_read = true;
  }
}

/// Destination operand that is written only (mov, lea, setcc...).
void write_dst(const Operand& op, DefUse& du) noexcept {
  if (op.kind == OperandKind::kReg) {
    du.defs.add(op.reg);
  } else if (op.kind == OperandKind::kMem) {
    touch_mem(op, /*is_write=*/true, du);
  }
}

/// Source operand (read only).
void read_src(const Operand& op, DefUse& du) noexcept {
  if (op.kind == OperandKind::kReg) {
    du.uses.add(op.reg);
  } else if (op.kind == OperandKind::kMem) {
    touch_mem(op, /*is_write=*/false, du);
  }
}

void use_stack(DefUse& du) noexcept {
  du.defs.add_family(RegFamily::kSp);
  du.uses.add_family(RegFamily::kSp);
}

}  // namespace

DefUse def_use(const Instruction& insn) noexcept {
  DefUse du;
  const auto& ops = insn.ops;

  switch (insn.mnemonic) {
    case Mnemonic::kMov:
    case Mnemonic::kMovzx:
    case Mnemonic::kMovsx:
      write_dst(ops[0], du);
      read_src(ops[1], du);
      break;

    case Mnemonic::kCmov:
      // Conditionally writes: destination counts as def AND use.
      rmw_dst(ops[0], du);
      read_src(ops[1], du);
      du.flags_use = true;
      break;

    case Mnemonic::kLea:
      // Address computation only: the memory operand's registers are read
      // but memory itself is untouched.
      write_dst(ops[0], du);
      if (ops[1].kind == OperandKind::kMem) {
        if (ops[1].mem.base) du.uses.add(*ops[1].mem.base);
        if (ops[1].mem.index) du.uses.add(*ops[1].mem.index);
      }
      break;

    case Mnemonic::kXchg:
    case Mnemonic::kXadd:
      rmw_dst(ops[0], du);
      rmw_dst(ops[1], du);
      if (insn.mnemonic == Mnemonic::kXadd) du.flags_def = true;
      break;

    case Mnemonic::kAdd:
    case Mnemonic::kAdc:
    case Mnemonic::kSub:
    case Mnemonic::kSbb:
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
      rmw_dst(ops[0], du);
      read_src(ops[1], du);
      du.flags_def = true;
      if (insn.mnemonic == Mnemonic::kAdc || insn.mnemonic == Mnemonic::kSbb)
        du.flags_use = true;
      break;

    case Mnemonic::kCmp:
    case Mnemonic::kTest:
      read_src(ops[0], du);
      read_src(ops[1], du);
      du.flags_def = true;
      break;

    case Mnemonic::kInc:
    case Mnemonic::kDec:
    case Mnemonic::kNot:
    case Mnemonic::kNeg:
      rmw_dst(ops[0], du);
      if (insn.mnemonic != Mnemonic::kNot) du.flags_def = true;
      break;

    case Mnemonic::kBswap:
      // No flags: a phantom flags_def here made bswap look like a flag
      // kill, letting dead-code elimination delete a live comparison
      // above it (caught by verify::verify_decoder_tables).
      rmw_dst(ops[0], du);
      break;

    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar:
    case Mnemonic::kRol:
    case Mnemonic::kRor:
    case Mnemonic::kRcl:
    case Mnemonic::kRcr:
      rmw_dst(ops[0], du);
      read_src(ops[1], du);
      du.flags_def = true;
      if (insn.mnemonic == Mnemonic::kRcl || insn.mnemonic == Mnemonic::kRcr)
        du.flags_use = true;
      break;

    case Mnemonic::kShld:
    case Mnemonic::kShrd:
      rmw_dst(ops[0], du);
      read_src(ops[1], du);
      read_src(ops[2], du);
      du.flags_def = true;
      break;

    case Mnemonic::kBt:
      read_src(ops[0], du);
      read_src(ops[1], du);
      du.flags_def = true;
      break;
    case Mnemonic::kBts:
    case Mnemonic::kBtr:
    case Mnemonic::kBtc:
      rmw_dst(ops[0], du);
      read_src(ops[1], du);
      du.flags_def = true;
      break;
    case Mnemonic::kBsf:
    case Mnemonic::kBsr:
      write_dst(ops[0], du);
      read_src(ops[1], du);
      du.flags_def = true;
      break;

    case Mnemonic::kImul:
      if (ops[1].kind == OperandKind::kNone) {
        // One-operand form: edx:eax = eax * rm.
        read_src(ops[0], du);
        du.defs.add_family(RegFamily::kAx);
        du.defs.add_family(RegFamily::kDx);
        du.uses.add_family(RegFamily::kAx);
      } else {
        write_dst(ops[0], du);
        read_src(ops[1], du);
        if (ops[2].kind != OperandKind::kNone) read_src(ops[2], du);
        else du.uses.add(ops[0].reg);  // two-operand form is read-modify-write
      }
      du.flags_def = true;
      break;

    case Mnemonic::kMul:
    case Mnemonic::kDiv:
    case Mnemonic::kIdiv:
      read_src(ops[0], du);
      du.defs.add_family(RegFamily::kAx);
      du.defs.add_family(RegFamily::kDx);
      du.uses.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kDx);
      du.flags_def = true;
      break;

    case Mnemonic::kCwde:
      du.defs.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kAx);
      break;
    case Mnemonic::kCdq:
      du.defs.add_family(RegFamily::kDx);
      du.uses.add_family(RegFamily::kAx);
      break;

    case Mnemonic::kPush:
      read_src(ops[0], du);
      use_stack(du);
      du.mem_write = true;
      break;
    case Mnemonic::kPop:
      write_dst(ops[0], du);
      use_stack(du);
      du.mem_read = true;
      break;
    case Mnemonic::kPushf:
      use_stack(du);
      du.mem_write = true;
      du.flags_use = true;
      break;
    case Mnemonic::kPopf:
      use_stack(du);
      du.mem_read = true;
      du.flags_def = true;
      break;
    case Mnemonic::kPusha:
      du.uses = RegSet::all();
      use_stack(du);
      du.mem_write = true;
      break;
    case Mnemonic::kPopa:
      du.defs = RegSet::all();
      use_stack(du);
      du.mem_read = true;
      break;

    case Mnemonic::kEnter:
    case Mnemonic::kLeave:
      du.defs.add_family(RegFamily::kBp);
      du.uses.add_family(RegFamily::kBp);
      use_stack(du);
      du.mem_read = insn.mnemonic == Mnemonic::kLeave;
      du.mem_write = insn.mnemonic == Mnemonic::kEnter;
      break;

    case Mnemonic::kCall:
      read_src(ops[0], du);
      use_stack(du);
      du.mem_write = true;
      du.side_effect = true;
      break;
    case Mnemonic::kRet:
    case Mnemonic::kRetf:
    case Mnemonic::kIret:
      use_stack(du);
      du.mem_read = true;
      du.side_effect = true;
      break;

    case Mnemonic::kJmp:
      read_src(ops[0], du);
      du.side_effect = true;
      break;
    case Mnemonic::kJcc:
      du.flags_use = true;
      du.side_effect = true;
      break;
    case Mnemonic::kJecxz:
      du.uses.add_family(RegFamily::kCx);
      du.side_effect = true;
      break;
    case Mnemonic::kLoop:
      du.uses.add_family(RegFamily::kCx);
      du.defs.add_family(RegFamily::kCx);
      du.side_effect = true;
      break;
    case Mnemonic::kLoope:
    case Mnemonic::kLoopne:
      du.uses.add_family(RegFamily::kCx);
      du.defs.add_family(RegFamily::kCx);
      du.flags_use = true;
      du.side_effect = true;
      break;

    case Mnemonic::kInt:
      // Linux int 0x80 convention: number in eax, args in ebx..ebp; result
      // in eax. Claim all GPRs read to stay conservative for other vectors.
      du.uses = RegSet::all();
      du.defs.add_family(RegFamily::kAx);
      du.side_effect = true;
      break;
    case Mnemonic::kSyscall:
      // x86-64 Linux convention: number in rax, args in rdi,rsi,rdx,r10,
      // r8,r9; clobbers rax (result), rcx (return RIP), r11 (rflags).
      du.uses = RegSet::all();
      du.defs.add_family(RegFamily::kAx);
      du.defs.add_family(RegFamily::kCx);
      du.defs.add_family(RegFamily::kR11);
      du.side_effect = true;
      break;
    case Mnemonic::kInt3:
    case Mnemonic::kHlt:
      du.side_effect = true;
      break;
    case Mnemonic::kInto:
      du.flags_use = true;  // traps on OF — the flag producer above is live
      du.side_effect = true;
      break;

    case Mnemonic::kMovs:
      du.uses.add_family(RegFamily::kSi);
      du.uses.add_family(RegFamily::kDi);
      du.defs.add_family(RegFamily::kSi);
      du.defs.add_family(RegFamily::kDi);
      du.mem_read = true;
      du.mem_write = true;
      break;
    case Mnemonic::kCmps:
      du.uses.add_family(RegFamily::kSi);
      du.uses.add_family(RegFamily::kDi);
      du.defs.add_family(RegFamily::kSi);
      du.defs.add_family(RegFamily::kDi);
      du.mem_read = true;
      du.flags_def = true;
      break;
    case Mnemonic::kStos:
      du.uses.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kDi);
      du.defs.add_family(RegFamily::kDi);
      du.mem_write = true;
      break;
    case Mnemonic::kLods:
      du.uses.add_family(RegFamily::kSi);
      du.defs.add_family(RegFamily::kSi);
      du.defs.add_family(RegFamily::kAx);
      du.mem_read = true;
      break;
    case Mnemonic::kScas:
      du.uses.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kDi);
      du.defs.add_family(RegFamily::kDi);
      du.mem_read = true;
      du.flags_def = true;
      break;

    case Mnemonic::kXlat:
      du.uses.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kBx);
      du.defs.add_family(RegFamily::kAx);
      du.mem_read = true;
      break;

    case Mnemonic::kSetcc:
      write_dst(ops[0], du);
      du.flags_use = true;
      break;
    case Mnemonic::kSalc:
      du.defs.add_family(RegFamily::kAx);
      du.flags_use = true;
      break;
    case Mnemonic::kLahf:
      du.defs.add_family(RegFamily::kAx);
      du.flags_use = true;
      break;
    case Mnemonic::kSahf:
      du.uses.add_family(RegFamily::kAx);
      du.flags_def = true;
      break;

    case Mnemonic::kCmpxchg:
      rmw_dst(ops[0], du);
      read_src(ops[1], du);
      du.defs.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kAx);
      du.flags_def = true;
      break;

    case Mnemonic::kCpuid:
      du.uses.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kCx);
      du.defs.add_family(RegFamily::kAx);
      du.defs.add_family(RegFamily::kBx);
      du.defs.add_family(RegFamily::kCx);
      du.defs.add_family(RegFamily::kDx);
      break;
    case Mnemonic::kRdtsc:
      du.defs.add_family(RegFamily::kAx);
      du.defs.add_family(RegFamily::kDx);
      break;

    case Mnemonic::kIn:
      du.defs.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kDx);
      du.side_effect = true;
      break;
    case Mnemonic::kOut:
      du.uses.add_family(RegFamily::kAx);
      du.uses.add_family(RegFamily::kDx);
      du.side_effect = true;
      break;

    case Mnemonic::kClc:
    case Mnemonic::kStc:
    case Mnemonic::kCmc:
    case Mnemonic::kCld:
    case Mnemonic::kStd:
      du.flags_def = true;
      break;
    case Mnemonic::kCli:
    case Mnemonic::kSti:
    case Mnemonic::kWait:
    case Mnemonic::kNop:
      break;

    case Mnemonic::kAaa:
    case Mnemonic::kAas:
    case Mnemonic::kDaa:
    case Mnemonic::kDas:
      du.uses.add_family(RegFamily::kAx);
      du.defs.add_family(RegFamily::kAx);
      du.flags_def = true;
      du.flags_use = true;
      break;

    case Mnemonic::kFpuNop:
      break;
    case Mnemonic::kFnstenv:
      touch_mem(ops[0], /*is_write=*/true, du);
      break;

    case Mnemonic::kInvalid:
      break;
  }

  // rep/repne string forms consume ecx as the repeat counter. Without
  // this, `mov ecx, N` ahead of `rep movs` counted as dead code — an
  // unsound deletion (caught by verify::verify_decoder_tables).
  switch (insn.mnemonic) {
    case Mnemonic::kMovs:
    case Mnemonic::kCmps:
    case Mnemonic::kStos:
    case Mnemonic::kLods:
    case Mnemonic::kScas:
      if (insn.prefixes.rep || insn.prefixes.repne) {
        du.uses.add_family(RegFamily::kCx);
        du.defs.add_family(RegFamily::kCx);
      }
      break;
    default:
      break;
  }
  return du;
}

}  // namespace senids::arch
