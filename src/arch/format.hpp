// Intel-syntax text rendering of decoded instructions, used in alerts,
// examples, and the template-authoring workflow.
#pragma once

#include <string>
#include <vector>

#include "arch/insn.hpp"

namespace senids::arch {

/// Render one instruction, e.g. "xor byte ptr [eax], 0x95".
std::string format(const Instruction& insn);

/// Render a listing with offsets, one instruction per line.
std::string format_listing(const std::vector<Instruction>& insns);

}  // namespace senids::arch
