// Architecture abstraction: one object per supported instruction set,
// bundling the decoder mode, register/width model, def/use tables,
// scanner entry points, syscall calling conventions, and the CPU-emulator
// factory. Consumers (analyzer, lifter, emulator, engine, tools) select
// an Arch once and never name a concrete ISA again; adding an
// architecture means registering one more descriptor here plus its
// decoder/lifter/emulator mode support.
//
// Lifting is keyed off Instruction::mode — the decode hook stamps every
// instruction with the mode it was produced under, so ir::lift and
// arch::def_use need no extra parameter and cannot be handed an
// instruction under the wrong rules.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "arch/decoder.hpp"
#include "arch/defuse.hpp"
#include "arch/scan.hpp"

namespace senids::emu {
class Cpu;
class VirtualMemory;
}  // namespace senids::emu

namespace senids::arch {

/// One syscall mechanism of an architecture, as seen by the IR: the event
/// vector the lifter emits, the register carrying the syscall number, and
/// the argument registers in convention order.
struct SyscallConvention {
  std::uint16_t vector = 0;      // ir::Event::vector value (0x80, 0x100, ...)
  RegFamily number_reg = RegFamily::kAx;
  std::array<RegFamily, 6> args{};
  std::uint8_t arg_count = 0;
};

class Arch {
 public:
  [[nodiscard]] std::string_view name() const noexcept { return name_; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] unsigned pointer_bits() const noexcept {
    return mode_ == Mode::k64 ? 64u : 32u;
  }
  [[nodiscard]] RegWidth native_width() const noexcept {
    return mode_ == Mode::k64 ? RegWidth::k64 : RegWidth::k32;
  }

  // --- decode / scan, under this architecture's rules -------------------
  [[nodiscard]] Instruction decode(util::ByteView code, std::size_t offset) const {
    return arch::decode(code, offset, mode_);
  }
  [[nodiscard]] std::vector<Instruction> linear_sweep(
      util::ByteView code, std::size_t offset = 0,
      std::size_t max_insns = SIZE_MAX) const {
    return arch::linear_sweep(code, offset, max_insns, mode_);
  }
  void linear_sweep(util::ByteView code, std::size_t offset, std::size_t max_insns,
                    std::vector<Instruction>& out) const {
    arch::linear_sweep(code, offset, max_insns, out, mode_);
  }
  [[nodiscard]] std::vector<CodeRun> find_code_runs(util::ByteView code,
                                                    std::size_t min_insns = 6) const {
    return arch::find_code_runs(code, min_insns, mode_);
  }
  void find_code_runs(util::ByteView code, std::size_t min_insns,
                      std::vector<CodeRun>& out, ScanScratch& scratch) const {
    arch::find_code_runs(code, min_insns, out, scratch, mode_);
  }
  [[nodiscard]] std::vector<Instruction> execution_trace(
      util::ByteView code, std::size_t entry, std::size_t max_insns = 4096) const {
    return arch::execution_trace(code, entry, max_insns, mode_);
  }
  void execution_trace(util::ByteView code, std::size_t entry, std::size_t max_insns,
                       std::vector<Instruction>& out, ScanScratch& scratch) const {
    arch::execution_trace(code, entry, max_insns, out, scratch, mode_);
  }

  /// Def/use summary. The tables are mode-keyed through Instruction::mode,
  /// so this simply forwards; it exists so callers never need the free
  /// function (and so a future arch can override the tables wholesale).
  [[nodiscard]] DefUse def_use(const Instruction& insn) const noexcept {
    return arch::def_use(insn);
  }

  /// Syscall mechanisms the lifter can emit for this arch, most canonical
  /// first (int 0x80 for x86_32; `syscall` for x86_64).
  [[nodiscard]] std::span<const SyscallConvention> syscall_conventions() const noexcept;

  /// CPU-emulator factory: a sandboxed emu::Cpu executing under this
  /// architecture's rules. Defined in src/emu/cpu.cpp — callers must link
  /// senids_emu (the arch library itself has no emu dependency).
  [[nodiscard]] std::unique_ptr<emu::Cpu> make_cpu(emu::VirtualMemory& mem,
                                                   std::uint32_t entry_va) const;

  // --- registry ---------------------------------------------------------
  static const Arch& x86_32() noexcept;
  static const Arch& x86_64() noexcept;
  /// Lookup by name ("x86_32", "x86_64"); nullptr when unknown.
  static const Arch* by_name(std::string_view name) noexcept;
  /// All registered architectures, registration order (x86_32 first).
  static std::span<const Arch* const> all() noexcept;
  /// The Arch whose decoder produced an instruction of the given mode.
  static const Arch& of_mode(Mode mode) noexcept;

  Arch(const Arch&) = delete;
  Arch& operator=(const Arch&) = delete;

 private:
  constexpr Arch(std::string_view name, Mode mode) : name_(name), mode_(mode) {}

  std::string_view name_;
  Mode mode_;

  friend struct ArchRegistry;
};

}  // namespace senids::arch
