#include "arch/scan.hpp"

#include <algorithm>

namespace senids::arch {

namespace {

/// Size-and-zero a scratch array without shrinking its capacity.
template <typename V>
void reset(V& v, std::size_t n) {
  v.assign(n, typename V::value_type{});
}

}  // namespace

void find_code_runs(util::ByteView code, std::size_t min_insns, std::vector<CodeRun>& out,
                    ScanScratch& scratch, Mode mode) {
  out.clear();
  const std::size_t n = code.size();
  if (n == 0) return;

  // run_len[i]: number of instructions decodable linearly from offset i.
  // next[i]: offset after the instruction at i (0 when invalid).
  auto& run_len = scratch.run_len;
  auto& next = scratch.next;
  reset(run_len, n);
  reset(next, n);
  for (std::size_t i = n; i-- > 0;) {
    Instruction insn = decode(code, i, mode);
    if (!insn.valid()) continue;
    const std::size_t after = insn.end_offset();
    next[i] = static_cast<std::uint32_t>(after);
    run_len[i] = 1 + (after < n ? run_len[after] : 0);
  }

  // Emit runs that are not a tail of an earlier (longer) run with the same
  // synchronization: offset i is a tail iff some j<i decodes through i.
  auto& is_tail = scratch.is_tail;
  reset(is_tail, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (run_len[i] != 0 && next[i] < n && run_len[next[i]] != 0) {
      is_tail[next[i]] = 1;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (run_len[i] >= min_insns && !is_tail[i]) {
      // Walk to compute byte length of the run.
      std::size_t pos = i;
      std::size_t count = 0;
      while (pos < n && run_len[pos] != 0) {
        ++count;
        pos = next[pos];
      }
      out.push_back(CodeRun{i, count, pos - i});
    }
  }
}

std::vector<CodeRun> find_code_runs(util::ByteView code, std::size_t min_insns,
                                    Mode mode) {
  std::vector<CodeRun> runs;
  ScanScratch scratch;
  find_code_runs(code, min_insns, runs, scratch, mode);
  return runs;
}

void execution_trace(util::ByteView code, std::size_t entry, std::size_t max_insns,
                     std::vector<Instruction>& out, ScanScratch& scratch, Mode mode) {
  out.clear();
  auto& visited = scratch.visited;
  if (visited.size() < code.size()) visited.resize(code.size(), 0);
  if (++scratch.visit_gen == 0) {  // stamp wrapped: every slot looks visited
    std::fill(visited.begin(), visited.end(), 0);
    scratch.visit_gen = 1;
  }
  const std::uint32_t gen = scratch.visit_gen;
  std::size_t pc = entry;

  while (pc < code.size() && out.size() < max_insns) {
    if (visited[pc] == gen) break;  // loop closed: stream complete
    visited[pc] = gen;
    Instruction insn = decode(code, pc, mode);
    if (!insn.valid()) break;
    const Instruction& placed = out.emplace_back(std::move(insn));

    if (placed.mnemonic == Mnemonic::kJmp || placed.mnemonic == Mnemonic::kCall) {
      // Calls are followed like jumps: shellcode uses call for GetPC
      // (jmp/call/pop), and the interesting flow continues at the target.
      auto target = placed.branch_target();
      if (!target || *target >= code.size()) break;  // indirect or escaping
      pc = *target;
      continue;
    }
    if (placed.ends_flow()) break;
    pc = placed.end_offset();
  }
}

std::vector<Instruction> execution_trace(util::ByteView code, std::size_t entry,
                                         std::size_t max_insns, Mode mode) {
  std::vector<Instruction> trace;
  ScanScratch scratch;
  execution_trace(code, entry, max_insns, trace, scratch, mode);
  return trace;
}

}  // namespace senids::arch
