// GPR register model shared by every architecture the decoder knows.
// Registers are identified by (family, width) where the family is the
// underlying architectural register; this makes aliasing queries (does
// writing AL clobber EAX? does writing R8B clobber R8?) trivial, which
// the def-use analysis in the semantic matcher depends on. Families 0-7
// are the classic IA-32 set; families 8-15 (R8..R15) exist only in
// 64-bit mode and are never produced by the 32-bit decoder.
#pragma once

#include <cstdint>
#include <string_view>

namespace senids::arch {

/// The sixteen GPR families, in standard encoding order. The 32-bit
/// decoder only ever emits kAx..kDi; kR8..kR15 require a REX prefix.
enum class RegFamily : std::uint8_t {
  kAx, kCx, kDx, kBx, kSp, kBp, kSi, kDi,
  kR8, kR9, kR10, kR11, kR12, kR13, kR14, kR15,
};

enum class RegWidth : std::uint8_t { k8Lo, k8Hi, k16, k32, k64 };

struct Reg {
  RegFamily family{};
  RegWidth width{};

  friend bool operator==(const Reg&, const Reg&) = default;

  /// True if the two registers share storage (e.g. AL vs EAX, but not
  /// AL vs AH? AH and AL share EAX but not each other's bits; for clobber
  /// analysis we treat any same-family pair as aliasing, which is sound).
  [[nodiscard]] bool aliases(const Reg& other) const noexcept {
    return family == other.family;
  }

  [[nodiscard]] std::string_view name() const noexcept;
};

/// Decode-table constructors: index is the 3-bit register field, or the
/// REX-extended 4-bit field in 64-bit mode.
Reg reg64(unsigned index) noexcept;
Reg reg32(unsigned index) noexcept;
Reg reg16(unsigned index) noexcept;
/// 8-bit register for an encoding index. Without a REX prefix, encodings
/// 4-7 are AH,CH,DH,BH; with any REX prefix present they become
/// SPL,BPL,SIL,DIL (low bytes of families 4-7) and 8-15 select R8B..R15B.
Reg reg8(unsigned index, bool rex_present = false) noexcept;

inline constexpr Reg kEax{RegFamily::kAx, RegWidth::k32};
inline constexpr Reg kEcx{RegFamily::kCx, RegWidth::k32};
inline constexpr Reg kEdx{RegFamily::kDx, RegWidth::k32};
inline constexpr Reg kEbx{RegFamily::kBx, RegWidth::k32};
inline constexpr Reg kEsp{RegFamily::kSp, RegWidth::k32};
inline constexpr Reg kEbp{RegFamily::kBp, RegWidth::k32};
inline constexpr Reg kEsi{RegFamily::kSi, RegWidth::k32};
inline constexpr Reg kEdi{RegFamily::kDi, RegWidth::k32};
inline constexpr Reg kAl{RegFamily::kAx, RegWidth::k8Lo};
inline constexpr Reg kCl{RegFamily::kCx, RegWidth::k8Lo};
inline constexpr Reg kRax{RegFamily::kAx, RegWidth::k64};
inline constexpr Reg kRdi{RegFamily::kDi, RegWidth::k64};
inline constexpr Reg kRsi{RegFamily::kSi, RegWidth::k64};
inline constexpr Reg kRsp{RegFamily::kSp, RegWidth::k64};

/// Number of bits in a register of the given width.
unsigned width_bits(RegWidth w) noexcept;

}  // namespace senids::arch
