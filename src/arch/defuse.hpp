// Per-instruction def/use summaries at register-family granularity. The
// semantic matcher uses these for clobber analysis (is a bound value still
// live at its matched use?) and the IR normalizer uses them for junk
// (dead-code) elimination. Family granularity — AL and EAX collapse to
// the same bit — is coarser than bit-accurate liveness but sound: it can
// only over-approximate interference, never miss it.
#pragma once

#include <cstdint>
#include <string>

#include "arch/insn.hpp"

namespace senids::arch {

/// Bitset over the sixteen GPR families.
class RegSet {
 public:
  constexpr RegSet() = default;

  void add(Reg r) noexcept { bits_ |= mask(r.family); }
  void add_family(RegFamily f) noexcept { bits_ |= mask(f); }
  [[nodiscard]] bool contains(Reg r) const noexcept { return bits_ & mask(r.family); }
  [[nodiscard]] bool contains_family(RegFamily f) const noexcept { return bits_ & mask(f); }
  [[nodiscard]] bool intersects(RegSet other) const noexcept {
    return (bits_ & other.bits_) != 0;
  }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  RegSet& operator|=(RegSet other) noexcept {
    bits_ |= other.bits_;
    return *this;
  }
  [[nodiscard]] std::uint16_t raw() const noexcept { return bits_; }

  static RegSet all() noexcept {
    RegSet s;
    s.bits_ = 0xffff;
    return s;
  }

  [[nodiscard]] std::string str() const;

 private:
  static constexpr std::uint16_t mask(RegFamily f) noexcept {
    return static_cast<std::uint16_t>(1u << static_cast<unsigned>(f));
  }
  std::uint16_t bits_ = 0;
};

/// Effect summary of one instruction.
struct DefUse {
  RegSet defs;       // register families written
  RegSet uses;       // register families read
  bool mem_read = false;
  bool mem_write = false;
  bool flags_def = false;
  bool flags_use = false;
  bool side_effect = false;  // syscall/IO/control transfer: never dead code
};

/// Compute the summary. Conservative for instructions with partially
/// modeled semantics (e.g. kInt claims to read every GPR).
DefUse def_use(const Instruction& insn) noexcept;

}  // namespace senids::arch
