// Configuration fingerprinting for the verdict cache. A cached verdict
// is only as trustworthy as the configuration that produced it: the same
// unit bytes analyzed under a different template set (or different
// analyzer/extractor/emulator knobs) may legitimately yield different
// alerts. Every cache key is therefore derived from
// SHA-256(config fingerprint || unit bytes), so changing any
// verdict-affecting option changes every key and a stale entry can never
// be served — invalidation by construction, no epochs or flush calls.
#pragma once

#include <vector>

#include "cache/sha256.hpp"
#include "semantic/template.hpp"

namespace senids::cache {

/// Absorb a stable serialization of the template set into `ctx`. Covers
/// everything the matcher consults: statement kinds, pattern structure
/// (via the canonical pattern rendering), widths, invertibility
/// requirements, syscall constraints, and template names/threat classes.
/// Free-text notes are excluded — they never influence matching.
void hash_templates(Sha256& ctx, const std::vector<semantic::Template>& templates);

/// Absorb one scalar option value. Tagging with a label keeps adjacent
/// fields from aliasing (two size_t options swapping values must change
/// the fingerprint).
void hash_option(Sha256& ctx, std::string_view label, std::uint64_t value);

}  // namespace senids::cache
