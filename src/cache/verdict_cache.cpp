#include "cache/verdict_cache.hpp"

namespace senids::cache {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

VerdictCache::VerdictCache(Options options) : options_(options) {
  const std::size_t count = round_up_pow2(options_.shards ? options_.shards : 1);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) shards_.push_back(std::make_unique<Shard>());
  // Ceiling division: count * shard_budget_ >= byte_budget. A budget
  // below one entry's cost degenerates to cache-nothing (insert rejects
  // entries costlier than the shard share), never to unbounded growth.
  shard_budget_ = (options_.byte_budget + count - 1) / count;
}

std::size_t VerdictCache::entry_cost(const Verdict& verdict) noexcept {
  // Approximate resident cost: the entry node, one map slot, and the
  // heap-allocated alert strings. Exact malloc accounting is not the
  // point — the budget needs to track growth linearly so eviction keeps
  // total memory proportional to it.
  std::size_t cost = sizeof(Entry) + 64;  // node + map-slot overhead
  cost += verdict.alerts.size() * sizeof(CachedAlert);
  for (const CachedAlert& a : verdict.alerts) cost += a.template_name.capacity();
  return cost;
}

std::optional<Verdict> VerdictCache::lookup(const Digest& key) {
  Shard& s = shard_of(key);
  std::optional<Verdict> found;
  {
    util::MutexLock lock(s.mu);
    ++s.lookups;
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      ++s.hits;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      found = it->second->verdict;
    }
  }
  if (metrics_) {
    if (found) {
      if (metrics_->hits) metrics_->hits->add();
    } else if (metrics_->misses) {
      metrics_->misses->add();
    }
  }
  return found;
}

void VerdictCache::insert(const Digest& key, Verdict verdict) {
  const std::size_t cost = entry_cost(verdict);
  if (cost > shard_budget_) return;  // would evict the whole shard for one entry
  Shard& s = shard_of(key);
  std::uint64_t evicted = 0;
  bool inserted = false;
  std::int64_t bytes_delta = 0;
  {
    util::MutexLock lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      // Verdicts are deterministic per key; the racing winner's copy is
      // as good as ours. Refresh recency and keep it.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
    } else {
      while (s.bytes + cost > shard_budget_ && !s.lru.empty()) {
        const Entry& tail = s.lru.back();
        s.bytes -= tail.cost;
        bytes_delta -= static_cast<std::int64_t>(tail.cost);
        s.map.erase(tail.key);
        s.lru.pop_back();
        ++s.evictions;
        ++evicted;
      }
      s.lru.push_front(Entry{key, std::move(verdict), cost});
      s.map.emplace(key, s.lru.begin());
      s.bytes += cost;
      bytes_delta += static_cast<std::int64_t>(cost);
      ++s.insertions;
      inserted = true;
    }
  }
  if (metrics_) {
    if (inserted && metrics_->insertions) metrics_->insertions->add();
    if (evicted && metrics_->evictions) metrics_->evictions->add(evicted);
    if (metrics_->entries) metrics_->entries->add(static_cast<std::int64_t>(inserted) -
                                                  static_cast<std::int64_t>(evicted));
    if (metrics_->bytes && bytes_delta) metrics_->bytes->add(bytes_delta);
  }
}

VerdictCache::Stats VerdictCache::stats() const {
  Stats total;
  total.byte_budget = options_.byte_budget;
  for (const auto& shard : shards_) {
    Shard& s = *shard;
    util::MutexLock lock(s.mu);
    total.lookups += s.lookups;
    total.hits += s.hits;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.entries += s.map.size();
    total.bytes += s.bytes;
  }
  total.misses = total.lookups - total.hits;
  return total;
}

void VerdictCache::clear() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::int64_t entries_delta = 0;
    std::int64_t bytes_delta = 0;
    {
      util::MutexLock lock(s.mu);
      entries_delta = static_cast<std::int64_t>(s.map.size());
      bytes_delta = static_cast<std::int64_t>(s.bytes);
      s.map.clear();
      s.lru.clear();
      s.bytes = 0;
    }
    if (metrics_) {
      if (metrics_->entries) metrics_->entries->sub(entries_delta);
      if (metrics_->bytes) metrics_->bytes->sub(bytes_delta);
    }
  }
}

}  // namespace senids::cache
