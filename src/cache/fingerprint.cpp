#include "cache/fingerprint.hpp"

#include "semantic/pattern.hpp"

namespace senids::cache {

namespace {

void hash_str(Sha256& ctx, std::string_view s) {
  // Length-prefixed so "ab"+"c" and "a"+"bc" hash differently.
  const std::uint64_t n = s.size();
  ctx.update(&n, sizeof n);
  ctx.update(s.data(), s.size());
}

void hash_pattern(Sha256& ctx, const semantic::PatPtr& p) {
  // to_string() is the canonical structural rendering (kind, operator,
  // variables, children); two patterns that render identically match
  // identically.
  hash_str(ctx, semantic::to_string(p));
}

}  // namespace

void hash_option(Sha256& ctx, std::string_view label, std::uint64_t value) {
  hash_str(ctx, label);
  ctx.update(&value, sizeof value);
}

void hash_templates(Sha256& ctx, const std::vector<semantic::Template>& templates) {
  hash_option(ctx, "template_count", templates.size());
  for (const semantic::Template& t : templates) {
    hash_str(ctx, t.name);
    hash_option(ctx, "threat", static_cast<std::uint64_t>(t.threat));
    hash_option(ctx, "stmts", t.stmts.size());
    for (const semantic::Stmt& s : t.stmts) {
      hash_option(ctx, "kind", static_cast<std::uint64_t>(s.kind));
      hash_pattern(ctx, s.addr);
      hash_pattern(ctx, s.value);
      hash_option(ctx, "width", s.width);
      hash_option(ctx, "invertible", s.require_invertible ? 1 : 0);
      hash_str(ctx, s.ref_var);
      hash_option(ctx, "vector", s.vector);
      hash_option(ctx, "sysno", s.sysno ? 0x100u + *s.sysno : 0);
      hash_option(ctx, "ebx_low", s.ebx_low ? 0x100u + *s.ebx_low : 0);
      hash_str(ctx, s.ebx_points_to);
    }
  }
}

}  // namespace senids::cache
