// Content-addressed verdict cache. The paper's headline workloads are
// massively repetitive — Code Red II floods byte-identical requests at
// every host, and benign traffic re-sends the same bodies constantly —
// yet analysis stages (b)-(e) are pure functions of the unit bytes and
// the engine configuration. Memoize them: key = SHA-256(config
// fingerprint || unit bytes), value = the unit's flow-independent
// verdict (alerts minus 5-tuple/timestamp, plus the work the miss path
// did, so hits can report bytes saved). Polymorphic traffic defeats the
// cache by design (every instance differs per flow — Bania's evasion
// argument), which is fine: misses cost one hash over bytes the pipeline
// was about to read anyway.
//
// Concurrency: the cache is sharded by key byte; each shard is an
// independently locked LRU list + hash map, so analysis workers on
// different shards never contend. The byte budget is split evenly across
// shards and enforced per shard on insert (evict-from-tail), bounding
// total memory at budget + one in-flight entry per shard.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/sha256.hpp"
#include "extract/extractor.hpp"
#include "obs/metrics.hpp"
#include "semantic/template.hpp"
#include "util/sync.hpp"

namespace senids::cache {

/// The flow-independent part of one alert: everything analyze_payload
/// derives from the unit bytes. The flow's 5-tuple and timestamp are
/// re-materialized from the current unit's metadata at replay time.
struct CachedAlert {
  semantic::ThreatClass threat{};
  std::string template_name;
  extract::FrameReason frame_reason{};
  std::size_t frame_offset = 0;
};

/// One cached analysis outcome. Alerts are stored in the exact order the
/// miss path emitted them, so a replayed unit's alert list is
/// byte-identical (and sorts identically) to a freshly analyzed one.
struct Verdict {
  std::vector<CachedAlert> alerts;
  // Work the miss path performed, replayed into "bytes saved" accounting
  // on a hit (the hit path skips stages (b)-(e) entirely).
  std::uint64_t frames_extracted = 0;
  std::uint64_t bytes_analyzed = 0;
  std::uint64_t frames_emulated = 0;
  std::uint64_t emulated_steps = 0;
};

/// Nullable observability hooks (same idiom as util::QueueMetrics): the
/// cache knows nothing about which registry families exist; the engine
/// binds these to the senids_verdict_cache_* family once.
struct CacheMetrics {
  obs::Counter* hits = nullptr;
  obs::Counter* misses = nullptr;
  obs::Counter* insertions = nullptr;
  obs::Counter* evictions = nullptr;
  obs::Gauge* entries = nullptr;
  obs::Gauge* bytes = nullptr;
};

class VerdictCache {
 public:
  struct Options {
    /// Total byte budget across all shards (entry overhead + alert
    /// strings; the unit bytes themselves are never stored).
    std::size_t byte_budget = 64u << 20;
    /// Shard count, rounded up to a power of two. More shards = less
    /// lock contention between analysis workers.
    std::size_t shards = 16;
  };

  explicit VerdictCache(Options options);

  /// Attach observability hooks (must outlive the cache; any may be
  /// null). Call before concurrent use.
  void set_metrics(const CacheMetrics* metrics) noexcept { metrics_ = metrics; }

  /// Copy-out lookup: the entry may be evicted by another worker the
  /// moment the shard lock drops, so hits return a snapshot.
  [[nodiscard]] std::optional<Verdict> lookup(const Digest& key);

  /// Insert a verdict, evicting least-recently-used entries until the
  /// shard fits its budget share. If the key is already present (two
  /// workers raced on the same miss) the existing entry is kept — both
  /// computed the same verdict, the first one wins. Entries whose cost
  /// alone exceeds the shard budget are not admitted.
  void insert(const Digest& key, Verdict verdict);

  /// Aggregated across shards. Monotonic counters are exact;
  /// entries/bytes are a point-in-time sum (consistent once concurrent
  /// mutators quiesce, which is all the tests and exporters need).
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t byte_budget = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Drop every entry (budget and handles stay).
  void clear();

  [[nodiscard]] std::size_t byte_budget() const noexcept { return options_.byte_budget; }

 private:
  struct KeyHash {
    // The key is already a cryptographic digest: any aligned slice is a
    // uniformly distributed hash.
    std::size_t operator()(const Digest& d) const noexcept {
      std::size_t h;
      static_assert(sizeof h <= sizeof(Digest));
      __builtin_memcpy(&h, d.data(), sizeof h);
      return h;
    }
  };

  struct Entry {
    Digest key;
    Verdict verdict;
    std::size_t cost = 0;
  };

  struct Shard {
    // One lock class for all shards: instances are peers that must never
    // nest (lookup/insert touch exactly one; stats/clear walk them one
    // at a time), and the lock-order checker enforces exactly that.
    util::Mutex mu{"VerdictCache.shard"};
    std::list<Entry> lru GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<Digest, std::list<Entry>::iterator, KeyHash> map GUARDED_BY(mu);
    std::size_t bytes GUARDED_BY(mu) = 0;
    // Plain counters guarded by mu (stats() takes each lock briefly).
    std::uint64_t lookups GUARDED_BY(mu) = 0;
    std::uint64_t hits GUARDED_BY(mu) = 0;
    std::uint64_t insertions GUARDED_BY(mu) = 0;
    std::uint64_t evictions GUARDED_BY(mu) = 0;
  };

  Shard& shard_of(const Digest& key) noexcept {
    // Byte 8 avoids the bytes KeyHash consumes, decorrelating the shard
    // choice from hash-map bucket placement.
    return *shards_[key[8] & (shards_.size() - 1)];
  }

  [[nodiscard]] static std::size_t entry_cost(const Verdict& verdict) noexcept;

  Options options_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  const CacheMetrics* metrics_ = nullptr;
};

}  // namespace senids::cache
