// SHA-256 (FIPS 180-4), incremental. The verdict cache is
// content-addressed: a cache hit silently replaces the whole analysis
// pipeline for a unit, so the key hash must make an accidental collision
// between two different payloads a non-event in practice. A 64-bit mixer
// cannot promise that at production volumes (2^32 distinct units puts a
// birthday collision on the table); a 256-bit cryptographic digest can.
// Self-contained — no OpenSSL dependency.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace senids::cache {

/// A finished SHA-256 digest. Doubles as the verdict-cache key.
using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;

  /// Absorb `len` bytes. May be called any number of times.
  void update(const void* data, std::size_t len) noexcept;
  void update(util::ByteView bytes) noexcept { update(bytes.data(), bytes.size()); }

  /// Finalize and return the digest. The context is consumed — call
  /// reset() before reusing it.
  [[nodiscard]] Digest finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(util::ByteView bytes) noexcept;

 private:
  void compress(const std::uint8_t block[64]) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace senids::cache
