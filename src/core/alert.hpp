// Alert record produced by the NIDS when a template fires on traffic.
#pragma once

#include <cstdint>
#include <string>

#include "extract/extractor.hpp"
#include "net/headers.hpp"
#include "semantic/template.hpp"

namespace senids::core {

struct Alert {
  std::uint32_t ts_sec = 0;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  semantic::ThreatClass threat{};
  std::string template_name;
  extract::FrameReason frame_reason{};
  std::size_t frame_offset = 0;  // offset of the frame within the payload

  /// One-line rendering for logs and example output.
  [[nodiscard]] std::string str() const;
};

}  // namespace senids::core
