// The semantics-aware NIDS (Figure 3): traffic classifier -> binary
// detection & extraction -> disassembler -> IR -> semantic analysis.
//
// Threading model: a sharded streaming pipeline. Stage (a)
// (classification, defragmentation, TCP reassembly) is stateful, so it
// is decomposed into N source-affine shards (NidsOptions::shards): the
// dispatcher (caller thread) peeks only each frame's IPv4 source and
// routes the record by source hash, and each shard owns the classifier
// scan-counting state, Defragmenter, and bounded flow table for the
// sources routed to it — per-source dark-space probe counting and
// 5-tuple flow reassembly (the flow key includes the source) stay
// correct within one shard with no cross-shard synchronization on the
// hot path. With shards == 1 (the default) stage (a) runs directly on
// the calling thread, exactly the pre-shard layout.
//
// Each suspicious payload or reassembled stream becomes an analysis
// unit handed through one bounded queue to a pool of workers running
// stages (b)-(e) — pure functions of one unit — *while* classification
// continues. Each worker owns a private AnalysisContext (its own
// extractor and analyzer sharing the engine's immutable template
// library, plus reusable scratch buffers), dequeues units in batches
// (NidsOptions::unit_batch) to amortize the queue lock, and merges its
// results once at the end — the per-unit hot loop touches no
// cross-worker mutable state beyond the sharded obs counters and the
// internally synchronized verdict cache. The queue bounds both unit
// count and queued bytes, so a traffic burst backpressures the
// producers instead of exhausting memory; flow tables are LRU-managed
// with an idle timeout and a live-flow cap, so long-lived or hostile
// flows cannot exhaust state either (evicted flows are flushed as
// units, not dropped). Alerts are merged and sorted on the full key at
// the end, so 1-shard and N-shard runs produce byte-identical reports.
// With threads <= 1 the queue/pool machinery is bypassed entirely and
// units are analyzed shard-local — inline on the shard consumer thread
// that formed them, each shard with its own AnalysisContext; with
// threads == 0 and shards == N that is the explicit scale-by-shards
// mode (the whole pipeline parallelizes N ways with no global queue).
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "cache/verdict_cache.hpp"
#include "classify/classifier.hpp"
#include "core/alert.hpp"
#include "emu/shellemu.hpp"
#include "extract/extractor.hpp"
#include "net/reassembly.hpp"
#include "obs/pipeline.hpp"
#include "pcap/pcap.hpp"
#include "semantic/analyzer.hpp"
#include "semantic/library.hpp"
#include "triage/triage.hpp"

namespace senids::core {

class PipelineShard;

struct NidsOptions {
  /// Instruction-set architecture for stages (c)-(e): candidate scanning,
  /// disassembly, IR lifting, template matching, and sandbox emulation
  /// all run under this Arch's rules (see src/arch/arch.hpp). nullptr =
  /// arch::Arch::x86_32(), the classic pipeline. The engine normalizes
  /// this at construction and propagates it into analyzer.arch and
  /// emulator.mode, so leave those derived fields alone; it is also part
  /// of the verdict-cache config fingerprint (the same bytes can carry a
  /// 32-bit payload and a 64-bit payload with different verdicts).
  const arch::Arch* arch = nullptr;
  classify::ClassifierOptions classifier;
  extract::ExtractorOptions extractor;
  semantic::SemanticAnalyzer::Options analyzer;
  /// Worker threads for the analysis stages (b)-(e). 1 = fully serial
  /// (the default). 0 = shard-local: no worker pool or global unit
  /// queue; every unit is analyzed inline on the shard consumer thread
  /// that formed it, so with shards == N the entire pipeline scales N
  /// ways with no cross-shard handoff (0 and 1 are identical when
  /// shards == 1). With threads > 1, a pool of that many workers drains
  /// one shared unit queue.
  std::size_t threads = 1;
  /// Units each analysis worker dequeues per queue-lock acquisition
  /// (threads > 1 only). Batching amortizes the queue mutex and the
  /// producer wakeup over the batch instead of paying them per unit;
  /// 1 = the classic pop-per-unit loop. Verdicts are independent per
  /// unit and reports are fully sorted, so the batch size can never
  /// change the report (pinned by tests/parallel_analysis_test.cpp).
  std::size_t unit_batch = 8;
  /// Stage-(a) pipeline shards. Records are routed to shards by a
  /// source-IP hash, and each shard owns its classifier state /
  /// defragmenter / flow table, so classification scales with cores
  /// while per-source semantics are preserved. 1 = classify on the
  /// calling thread (no dispatcher). Note: max_flows and
  /// classifier.dark_space_max_sources act per shard when shards > 1.
  std::size_t shards = 1;
  /// Byte cap on each defragmenter's pending-fragment buffer; oldest
  /// pending datagrams are dropped past it (anti-DoS; counted in
  /// NidsStats::defrag_dropped and senids_defrag_dropped_total).
  std::size_t defrag_max_buffered_bytes = 4u << 20;
  /// Reassemble suspicious TCP flows and analyze the byte stream (exploit
  /// payloads may span segments). Non-TCP payloads are analyzed directly.
  bool reassemble_tcp = true;
  /// Cap on reassembled stream bytes kept per flow: bounds both the
  /// out-of-order pending buffer and the assembled stream itself. A flow
  /// whose stream hits the cap is flushed truncated (alerts on the prefix
  /// still fire) and its state released.
  std::size_t max_stream_bytes = 1 << 20;
  /// Evict flows with no activity for this many seconds of capture time;
  /// the partial stream is flushed as an analysis unit. 0 = disabled.
  std::uint32_t flow_idle_timeout_sec = 0;
  /// Hard cap on live flows; past it the least-recently-active flow is
  /// flushed and evicted to make room. 0 = unlimited.
  std::size_t max_flows = 0;
  /// Depth of the stage-(a) -> workers handoff queue, in analysis units.
  /// The producer blocks when it is full (backpressure).
  std::size_t max_queued_units = 256;
  /// Byte budget for payloads waiting in the handoff queue; the producer
  /// also blocks while it would be exceeded. 0 = unlimited.
  std::size_t max_queued_bytes = 64 << 20;
  /// Deep analysis: emulate suspicious frames so decoders decrypt
  /// themselves, then statically re-analyze the decoded frame and alert
  /// on observed runtime behaviour (execve, port binding). Off by
  /// default — it is the expensive last line of the pipeline.
  bool enable_emulation = false;
  /// Require static decryption-loop detections to be confirmed by the
  /// sandbox: the frame must actually self-modify when run (a real
  /// decoder decodes; a coincidental code-shaped byte pattern almost
  /// never executes coherently). Trades the pure-static design of the
  /// paper for a measurably zero false-positive rate on corpora with
  /// large amounts of high-entropy data. Off by default.
  bool confirm_decoders_by_emulation = false;
  /// Minimum self-modified frame bytes for a confirmed decoder.
  std::size_t min_decoded_bytes = 8;
  emu::EmulatorOptions emulator;
  /// LiveSession only: log a one-line metrics snapshot (util::Log, info
  /// level) every this many seconds of capture time. 0 = disabled.
  std::uint32_t metrics_log_interval_sec = 0;
  /// Byte budget for the content-addressed verdict cache (0 = disabled).
  /// Keyed on SHA-256(config fingerprint || unit bytes): a hit replays
  /// the stored verdict and skips stages (b)-(e) entirely. Behaviour-
  /// preserving by construction — see DESIGN.md "Verdict cache" and
  /// tests/cache_differential_test.cpp.
  std::size_t verdict_cache_bytes = 0;
  /// Units larger than this bypass the cache (hashing huge one-off
  /// streams buys nothing; recorded as cache_bypass).
  std::size_t cache_max_unit_bytes = 4u << 20;
  /// Stage-0 triage prefilter (src/triage): screens every analysis unit
  /// ahead of the verdict cache and rejects units that provably (or
  /// differential-tested empirically) cannot alert. Off by default in
  /// the library; senids_scan turns it on. Like the threading and cache
  /// knobs it is behaviour-preserving — alerts are byte-identical either
  /// way (tests/triage_differential_test.cpp) — so it is excluded from
  /// the cache config fingerprint.
  triage::TriageOptions triage;
};

/// Accumulated latency of one pipeline stage: execution count, summed
/// wall seconds, and the costliest single execution. Counts are always
/// maintained; the time fields are only accumulated while
/// obs::metrics_enabled() (zero when observability is off).
struct StageStat {
  std::size_t count = 0;
  double seconds = 0.0;
  double max_seconds = 0.0;
};

struct NidsStats {
  std::size_t packets = 0;
  std::size_t non_ip = 0;
  std::size_t suspicious_packets = 0;
  std::size_t units_analyzed = 0;     // payloads/streams sent to stage (b)
  // Logical work counters: frames_extracted / frames_emulated /
  // emulated_steps count the work each unit's verdict represents, so a
  // verdict-cache hit folds the stored miss-path figures back in and
  // cache-on and cache-off runs report identical values (pinned by
  // tests/parallel_analysis_test.cpp). bytes_analyzed is the exception:
  // it counts only bytes the disassembler actually read this run — the
  // replayed remainder is in cache_bytes_saved, so bytes_analyzed +
  // cache_bytes_saved equals the cache-off bytes_analyzed.
  std::size_t frames_extracted = 0;
  std::size_t bytes_analyzed = 0;     // frame bytes reaching the disassembler
  std::size_t frames_emulated = 0;
  std::size_t emulated_steps = 0;     // instructions executed in the sandbox
  std::size_t flows_evicted_idle = 0;     // flushed by flow_idle_timeout_sec
  std::size_t flows_evicted_overflow = 0; // flushed to enforce max_flows
  std::size_t streams_truncated = 0;      // flows that hit max_stream_bytes
  std::size_t dark_sources_evicted = 0;   // dark-space counters LRU-evicted at the cap
  std::size_t defrag_dropped = 0;         // pending datagrams dropped at the defrag cap
  // Stage-0 triage tiers (zero when triage is off). Every unit is
  // screened exactly once and is exactly one of escalated/rejected:
  // triage_screened == triage_escalated + triage_rejected, and rejected
  // units still count in units_analyzed (they entered the analysis
  // plane; triage is what they got instead of stages (b)-(e)).
  std::size_t triage_screened = 0;
  std::size_t triage_escalated = 0;
  std::size_t triage_rejected = 0;
  std::size_t triage_rejected_bytes = 0;  // payload bytes of rejected units
  // Verdict cache (zero when the cache is disabled). Every unit that
  // reaches the cache is exactly one of hit/miss/bypass; rejected units
  // never reach it, so hits + misses + bypass ==
  // units_analyzed - triage_rejected. cache_bytes_saved is the bytes_analyzed the hit
  // units' miss-path runs performed — the disasm work replay avoided
  // (the one work counter hits do NOT fold back into its headline
  // field; see the logical-work comment above).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_bypass = 0;
  std::size_t cache_bytes_saved = 0;
  semantic::AnalyzerStats analyzer;
  /// Per-stage latency, indexed by obs::Stage. classify counts packets,
  /// reassemble counts flushed streams, extract counts units, disasm/
  /// lift/match count analyzed frames, emulate counts sandbox runs.
  std::array<StageStat, obs::kStageCount> stages{};
  /// Stage-(a) *producer* wall, summed across shards: for each shard,
  /// the wall time its producing thread spent parsing, classifying,
  /// defragmenting, reassembling, and handing units off. Excludes
  /// analysis run inline when threads <= 1; with threads > 1 it includes
  /// time producers spent blocked on queue backpressure (wall they
  /// really lost). With shards == 1 this is exactly the caller thread's
  /// stage-(a) wall — the pre-shard definition. With shards > 1 it is a
  /// summed, CPU-time-style figure (elapsed stage-(a) wall is the max
  /// over shards, not this sum), and the caller thread's own cost moves
  /// to dispatch_seconds. Documented identities, regression-tested by
  /// tests/shard_differential_test.cpp: dispatch_seconds == 0 whenever
  /// shards <= 1, and stages[kClassify].count == packets at any shard
  /// count.
  double classify_seconds = 0.0;
  /// Wall time the caller thread spent routing records to shards by
  /// source-IP hash. Only nonzero with shards > 1; it overlaps
  /// classify_seconds while the shards stream, so the two must not be
  /// added together.
  double dispatch_seconds = 0.0;
  /// Summed per-unit wall time of the analysis stages (b)-(e) across all
  /// workers — a CPU-time-style total that is comparable across thread
  /// counts. With threads > 1 it exceeds elapsed wall time (that is the
  /// point: elapsed = max over workers, this = sum). It is NOT additive
  /// with classify_seconds into an end-to-end wall figure; the two
  /// overlap while the pipeline streams.
  double analysis_seconds = 0.0;
};

struct Report {
  std::vector<Alert> alerts;
  NidsStats stats;

  [[nodiscard]] bool detected(semantic::ThreatClass threat) const;

  /// Multi-line human-readable rendering: pipeline statistics, alerts,
  /// and per-source / per-threat rollups (what trace_analysis and
  /// senids_scan print).
  [[nodiscard]] std::string str() const;
};

/// Per-worker state for the analysis stages (b)-(e): a private extractor
/// and analyzer — the template library itself is shared read-only
/// between the engine and every context — plus the reusable working
/// memory the per-unit hot loop needs (extraction frames, scanner
/// arrays, execution traces, lifted IR events, the per-unit emulation
/// memo and alert-dedup set). One context per worker or shard thread
/// keeps the loop free of cross-worker mutable state and, after
/// warm-up, free of per-frame heap churn. Construct via
/// NidsEngine::make_analysis_context(); movable, not thread-safe.
class AnalysisContext {
 public:
  AnalysisContext(AnalysisContext&&) = default;
  AnalysisContext& operator=(AnalysisContext&&) = default;

 private:
  friend class NidsEngine;
  AnalysisContext(const NidsOptions& options,
                  std::shared_ptr<const std::vector<semantic::Template>> templates);

  extract::BinaryExtractor extractor_;
  semantic::SemanticAnalyzer analyzer_;
  semantic::AnalyzerScratch scratch_;
  std::vector<extract::BinaryFrame> frames_;
  /// Per-frame emulation results, memoized within one unit so the
  /// decoder-confirmation pass and the deep-analysis pass never emulate
  /// the same frame twice.
  std::vector<std::optional<emu::EmulationResult>> emu_memo_;
  /// Template names already alerted for the current unit (a template may
  /// fire on several overlapping frames; it is reported once).
  std::unordered_set<std::string> fired_names_;
};

class NidsEngine {
 public:
  /// Constructs with the standard template library. Debug builds
  /// self-verify: the decoder/def-use cross-check runs once per process,
  /// and unless the caller installed one, analyzer.post_lift_hook is set
  /// to run senids::verify::verify_ir over every lifted unit (violations
  /// abort — see DESIGN.md "Static verification").
  explicit NidsEngine(NidsOptions options);
  NidsEngine(NidsOptions options, std::vector<semantic::Template> templates);
  NidsEngine(NidsEngine&&) noexcept;
  NidsEngine& operator=(NidsEngine&&) noexcept;
  ~NidsEngine();

  /// Stateful classifier (register honeypots / dark prefixes here —
  /// that part is shared, read-only configuration for every shard). Its
  /// *embedded* taint/count state is only fed by single-shard runs; with
  /// shards > 1 that state lives per shard, so query taint through
  /// is_tainted() below rather than classifier().is_tainted().
  classify::TrafficClassifier& classifier() noexcept { return classifier_; }

  /// Whether any shard (or the classifier's embedded state) has tainted
  /// `src`. The shard-count-independent way to ask "did classification
  /// flag this source".
  [[nodiscard]] bool is_tainted(net::Ipv4Addr src) const;

  /// Run the full pipeline over a capture (streaming: analysis workers
  /// drain units while classification is still feeding them).
  Report process_capture(const pcap::Capture& capture);

  /// Analyze one application payload directly (classification skipped).
  /// Used by Table 1/2 benches that feed exploit payloads end-to-end.
  /// `unit_id` correlates this unit's tracer spans (0 = unlabelled).
  /// Allocates a transient AnalysisContext per call; callers analyzing
  /// payloads in a loop should hold a context and use the overload below.
  std::vector<Alert> analyze_payload(util::ByteView payload, const Alert& meta_prototype,
                                     NidsStats* stats = nullptr,
                                     std::uint64_t unit_id = 0) const;

  /// Context-reusing form — the worker hot path. `ctx` must come from
  /// this engine's make_analysis_context() and must not be used from two
  /// threads at once; the engine itself stays const and shareable.
  std::vector<Alert> analyze_payload(AnalysisContext& ctx, util::ByteView payload,
                                     const Alert& meta_prototype, NidsStats* stats = nullptr,
                                     std::uint64_t unit_id = 0) const;

  /// A per-worker context for the analyze_payload overload above: its
  /// extractor/analyzer are configured like the engine's own and share
  /// the engine's immutable template library (no template copies).
  [[nodiscard]] AnalysisContext make_analysis_context() const;

  [[nodiscard]] const NidsOptions& options() const noexcept { return options_; }
  [[nodiscard]] const semantic::SemanticAnalyzer& analyzer() const noexcept {
    return analyzer_;
  }

  /// The verdict cache, or nullptr when verdict_cache_bytes == 0.
  /// Shared by every worker; internally synchronized.
  [[nodiscard]] cache::VerdictCache* verdict_cache() const noexcept {
    return verdict_cache_.get();
  }

  /// SHA-256 over the template set and every verdict-affecting option;
  /// the prefix of every cache key. Exposed for tests that prove
  /// config changes invalidate the cache.
  [[nodiscard]] const cache::Digest& config_fingerprint() const noexcept {
    return config_fingerprint_;
  }

  /// The stage-0 triage filter, or nullptr when triage is off. Shared by
  /// every worker; immutable after construction.
  [[nodiscard]] const triage::TriageFilter* triage_filter() const noexcept {
    return triage_.get();
  }

 private:
  /// Create the stage-(a) shards on first use (lazily, so honeypot /
  /// dark-prefix registration between construction and the first capture
  /// is visible to every shard's view of the configuration).
  void ensure_shards();

  NidsOptions options_;
  classify::TrafficClassifier classifier_;
  semantic::SemanticAnalyzer analyzer_;
  cache::Digest config_fingerprint_{};
  std::unique_ptr<cache::VerdictCache> verdict_cache_;
  std::unique_ptr<triage::TriageFilter> triage_;
  /// Stage-(a) shards; persist across captures (taint state outlives a
  /// capture, like the classifier's embedded state always has).
  std::vector<std::unique_ptr<PipelineShard>> shards_;
};

/// Strict-weak order over every alert field: workers finish in arbitrary
/// order, so reports are sorted on the full key to make output
/// deterministic (ts/src/dst alone tie for e.g. two frames of one flow).
[[nodiscard]] bool alert_less(const Alert& a, const Alert& b) noexcept;

}  // namespace senids::core
