#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <unordered_map>

#include "arch/arch.hpp"
#include "cache/fingerprint.hpp"
#include "core/pipeline_obs.hpp"
#include "core/shard.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "obs/workers.hpp"
#include "util/log.hpp"
#include "util/queue.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/ir_verify.hpp"
#include "verify/table_check.hpp"

namespace senids::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// Saturating seconds -> microseconds for flight-recorder fields.
std::uint32_t to_flight_us(double seconds) {
  const double us = seconds * 1e6;
  if (us <= 0) return 0;
  if (us >= 4294967295.0) return 0xffffffffu;
  return static_cast<std::uint32_t>(us);
}

std::uint32_t clamp_u32(std::size_t v) {
  return static_cast<std::uint32_t>(std::min<std::size_t>(v, 0xffffffffu));
}

/// printf into a growing string: measures first, then formats into the
/// exact space. No fixed buffer, so long template names never truncate.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_format(std::string& out, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list measured;
  va_copy(measured, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, measured);
  va_end(measured);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt, args);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

void merge_analyzer(semantic::AnalyzerStats& into, const semantic::AnalyzerStats& from) {
  into.frames += from.frames;
  into.candidate_runs += from.candidate_runs;
  into.traces += from.traces;
  into.instructions_lifted += from.instructions_lifted;
  into.template_matches_tried += from.template_matches_tried;
  into.entry_budget_exhausted += from.entry_budget_exhausted;
  into.insn_budget_exhausted += from.insn_budget_exhausted;
  into.disasm_seconds += from.disasm_seconds;
  into.lift_seconds += from.lift_seconds;
  into.match_seconds += from.match_seconds;
}

// Folds both worker-local analysis stats and per-shard stage-(a) stats
// into the report; a worker's stage-(a) fields are simply zero (and vice
// versa), so one helper serves both. dispatch_seconds is deliberately
// not merged — it is caller-thread wall the engine sets directly.
void merge_stats(NidsStats& into, const NidsStats& from) {
  into.packets += from.packets;
  into.non_ip += from.non_ip;
  into.suspicious_packets += from.suspicious_packets;
  into.units_analyzed += from.units_analyzed;
  into.frames_extracted += from.frames_extracted;
  into.bytes_analyzed += from.bytes_analyzed;
  into.frames_emulated += from.frames_emulated;
  into.emulated_steps += from.emulated_steps;
  into.flows_evicted_idle += from.flows_evicted_idle;
  into.flows_evicted_overflow += from.flows_evicted_overflow;
  into.streams_truncated += from.streams_truncated;
  into.dark_sources_evicted += from.dark_sources_evicted;
  into.defrag_dropped += from.defrag_dropped;
  into.triage_screened += from.triage_screened;
  into.triage_escalated += from.triage_escalated;
  into.triage_rejected += from.triage_rejected;
  into.triage_rejected_bytes += from.triage_rejected_bytes;
  merge_analyzer(into.analyzer, from.analyzer);
  for (std::size_t i = 0; i < into.stages.size(); ++i) {
    into.stages[i].count += from.stages[i].count;
    into.stages[i].seconds += from.stages[i].seconds;
    into.stages[i].max_seconds =
        std::max(into.stages[i].max_seconds, from.stages[i].max_seconds);
  }
  into.cache_hits += from.cache_hits;
  into.cache_misses += from.cache_misses;
  into.cache_bypass += from.cache_bypass;
  into.cache_bytes_saved += from.cache_bytes_saved;
  into.classify_seconds += from.classify_seconds;
  into.analysis_seconds += from.analysis_seconds;
}

}  // namespace

bool alert_less(const Alert& a, const Alert& b) noexcept {
  return std::tie(a.ts_sec, a.src.value, a.dst.value, a.src_port, a.dst_port,
                  a.template_name, a.threat, a.frame_reason, a.frame_offset) <
         std::tie(b.ts_sec, b.src.value, b.dst.value, b.src_port, b.dst_port,
                  b.template_name, b.threat, b.frame_reason, b.frame_offset);
}

std::string Alert::str() const {
  std::string out;
  append_format(out, "[%s] %s:%u -> %s:%u template=%s frame=%s+%zu",
                std::string(semantic::threat_class_name(threat)).c_str(), src.str().c_str(),
                src_port, dst.str().c_str(), dst_port, template_name.c_str(),
                std::string(extract::frame_reason_name(frame_reason)).c_str(), frame_offset);
  return out;
}

bool Report::detected(semantic::ThreatClass threat) const {
  return std::any_of(alerts.begin(), alerts.end(),
                     [threat](const Alert& a) { return a.threat == threat; });
}

std::string Report::str() const {
  std::string out;
  auto line = [&out](const char* fmt, auto... args) {
    append_format(out, fmt, args...);
    out.push_back('\n');
  };
  line("packets            : %zu (%zu non-IP)", stats.packets, stats.non_ip);
  line("suspicious packets : %zu", stats.suspicious_packets);
  line("analysis units     : %zu", stats.units_analyzed);
  line("frames extracted   : %zu (%zu emulated)", stats.frames_extracted,
       stats.frames_emulated);
  line("bytes disassembled : %zu", stats.bytes_analyzed);
  line("flow evictions     : %zu idle, %zu overflow, %zu streams truncated",
       stats.flows_evicted_idle, stats.flows_evicted_overflow, stats.streams_truncated);
  if (stats.defrag_dropped) {
    line("defrag drops       : %zu pending datagrams (buffer cap)", stats.defrag_dropped);
  }
  if (stats.dark_sources_evicted) {
    line("dark-src evictions : %zu counter entries (table cap)",
         stats.dark_sources_evicted);
  }
  if (stats.cache_hits || stats.cache_misses || stats.cache_bypass) {
    line("verdict cache      : %zu hits, %zu misses, %zu bypassed (%zu bytes saved)",
         stats.cache_hits, stats.cache_misses, stats.cache_bypass,
         stats.cache_bytes_saved);
  }
  if (stats.triage_screened) {
    const auto share = [this](std::size_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(stats.triage_screened);
    };
    line("triage tiers       : %10s %12s %12s", "units", "share", "bytes");
    line("  stage-0 rejected : %10zu %11.1f%% %12zu", stats.triage_rejected,
         share(stats.triage_rejected), stats.triage_rejected_bytes);
    line("  escalated        : %10zu %11.1f%%", stats.triage_escalated,
         share(stats.triage_escalated));
  }
  // The wall totals measure different things on purpose (see NidsStats):
  // summed per-shard stage-(a) producer wall, caller-thread dispatch
  // wall, and summed per-unit analysis wall across workers. They overlap
  // in time and must not be added together.
  line("classify wall      : %.3f s (stage (a), summed across shards)",
       stats.classify_seconds);
  if (stats.dispatch_seconds > 0.0) {
    line("dispatch wall      : %.3f s (source-hash routing, caller thread)",
         stats.dispatch_seconds);
  }
  line("analysis work      : %.3f s (summed per-unit wall, all workers)",
       stats.analysis_seconds);
  const bool any_stage = std::any_of(stats.stages.begin(), stats.stages.end(),
                                     [](const StageStat& s) { return s.count > 0; });
  if (any_stage) {
    line("stage latency      : %10s %12s %12s %12s", "runs", "total(s)", "mean(us)",
         "max(us)");
    for (std::size_t i = 0; i < stats.stages.size(); ++i) {
      const StageStat& s = stats.stages[i];
      if (s.count == 0) continue;
      line("  %-17s: %10zu %12.4f %12.2f %12.2f",
           std::string(obs::stage_name(static_cast<obs::Stage>(i))).c_str(), s.count,
           s.seconds, s.seconds / static_cast<double>(s.count) * 1e6, s.max_seconds * 1e6);
    }
  }
  line("alerts             : %zu", alerts.size());
  for (const Alert& a : alerts) {
    out += "  ";
    out += a.str();
    out.push_back('\n');
  }
  // Per-source rollup, rendered in first-appearance order (the alerts
  // are sorted, so that is ascending source order). The hash map only
  // deduplicates; an alert-sized report must not pay O(n^2) scans here.
  std::vector<std::pair<std::uint32_t, std::size_t>> sources;
  std::unordered_map<std::uint32_t, std::size_t> source_index;
  source_index.reserve(alerts.size());
  for (const Alert& a : alerts) {
    const auto [it, inserted] = source_index.try_emplace(a.src.value, sources.size());
    if (inserted) {
      sources.emplace_back(a.src.value, 1);
    } else {
      ++sources[it->second].second;
    }
  }
  if (!sources.empty()) {
    out += "offending sources  :\n";
    for (const auto& [src, n] : sources) {
      line("  %-18s %zu alert(s)", net::Ipv4Addr{src}.str().c_str(), n);
    }
  }
  return out;
}

namespace {

/// Debug builds self-verify: every lifted unit runs through the IR
/// verifier (SemanticAnalyzer::Options::post_lift_hook), and the
/// decoder/def-use cross-check runs once per process at engine
/// construction. Both abort loudly on a violation — a malformed IR node
/// or an inconsistent opcode table is a silent missed detection in
/// release, and the whole point of the debug hook is to refuse to limp
/// past it. Release builds skip both (the hook slot stays available for
/// tests and tools to install their own).
/// Resolve the architecture knob: nullptr means the classic x86_32
/// pipeline. The resolved Arch is pushed into the analyzer's scanner
/// options and the emulator's CPU mode, so every stage agrees on the ISA
/// without consulting NidsOptions::arch again.
NidsOptions with_arch_defaults(NidsOptions options) {
  if (!options.arch) options.arch = &arch::Arch::x86_32();
  options.analyzer.arch = options.arch;
  options.emulator.mode = options.arch->mode();
  return options;
}

NidsOptions with_debug_verification(NidsOptions options) {
#ifndef NDEBUG
  static const bool tables_ok = [] {
    verify::Report r = verify::verify_decoder_tables();
    if (!r.ok()) {
      util::log_error() << "decoder/def-use table cross-check failed:\n" << r.str();
    }
    return r.ok();
  }();
  if (!tables_ok) std::abort();
  if (!options.analyzer.post_lift_hook) {
    options.analyzer.post_lift_hook = [](const std::vector<arch::Instruction>& trace,
                                         const ir::LiftResult& lifted) {
      verify::Report r = verify::verify_ir(trace, lifted);
      if (!r.ok()) {
        util::log_error() << "IR verifier found " << r.errors()
                          << " violation(s) in a lifted unit:\n"
                          << r.str();
        std::abort();
      }
    };
  }
#endif
  return options;
}

}  // namespace

namespace {

/// SHA-256 over every input that can change a unit's verdict: the
/// template set plus extractor/analyzer/emulation options. Prefixed to
/// every cache key, so reconfiguring the engine can never serve a stale
/// hit. post_lift_hook is deliberately excluded — it verifies, it does
/// not decide. The triage mode is excluded too: like the threading and
/// cache knobs it is behaviour-preserving (rejected units skip the cache
/// entirely, so a triage-off run can never replay a triage-on verdict it
/// should not have, and vice versa — the stored verdicts themselves are
/// identical by the differential contract).
cache::Digest compute_config_fingerprint(const NidsOptions& o,
                                         const std::vector<semantic::Template>& templates) {
  cache::Sha256 ctx;
  cache::hash_templates(ctx, templates);
  auto opt = [&ctx](std::string_view label, std::uint64_t v) {
    cache::hash_option(ctx, label, v);
  };
  const extract::ExtractorOptions& e = o.extractor;
  opt("ex.min_unicode_escapes", e.min_unicode_escapes);
  opt("ex.min_repetition", e.min_repetition);
  opt("ex.min_sled", e.min_sled);
  opt("ex.min_binary_region", e.min_binary_region);
  opt("ex.min_return_addresses", e.min_return_addresses);
  opt("ex.min_base64_encoded", e.min_base64_encoded);
  opt("ex.min_base64_decoded", e.min_base64_decoded);
  opt("ex.extract_all", e.extract_all ? 1 : 0);
  // The ISA changes how the same bytes decode, lift, and emulate, so it
  // is verdict-affecting. o.arch is already normalized (never null here).
  opt("arch.mode", static_cast<std::uint64_t>(o.arch->mode()));
  const semantic::SemanticAnalyzer::Options& a = o.analyzer;
  opt("an.min_run_insns", a.min_run_insns);
  opt("an.max_entries", a.max_entries);
  opt("an.max_trace_insns", a.max_trace_insns);
  opt("an.max_total_insns", a.max_total_insns);
  opt("enable_emulation", o.enable_emulation ? 1 : 0);
  opt("confirm_decoders", o.confirm_decoders_by_emulation ? 1 : 0);
  opt("min_decoded_bytes", o.min_decoded_bytes);
  opt("emu.max_steps", o.emulator.max_steps);
  opt("emu.max_syscalls", o.emulator.max_syscalls);
  opt("emu.max_entries", o.emulator.max_entries);
  opt("emu.min_run_insns", o.emulator.min_run_insns);
  return ctx.finish();
}

}  // namespace

NidsEngine::NidsEngine(NidsOptions options)
    : NidsEngine(std::move(options), semantic::make_standard_library()) {}

// Out of line: PipelineShard is incomplete in the header.
NidsEngine::NidsEngine(NidsEngine&&) noexcept = default;
NidsEngine& NidsEngine::operator=(NidsEngine&&) noexcept = default;
NidsEngine::~NidsEngine() = default;

void NidsEngine::ensure_shards() {
  if (!shards_.empty()) return;
  const std::size_t n = std::max<std::size_t>(1, options_.shards);
  // A lone shard routes verdicts through the classifier's embedded state
  // (own_state == false) so classifier().is_tainted() keeps observing
  // what single-shard runs always exposed.
  const bool own_state = n > 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<PipelineShard>(i, options_, classifier_, own_state));
  }
}

bool NidsEngine::is_tainted(net::Ipv4Addr src) const {
  if (classifier_.is_tainted(src)) return true;
  for (const auto& shard : shards_) {
    if (shard->is_tainted(src)) return true;
  }
  return false;
}

NidsEngine::NidsEngine(NidsOptions options, std::vector<semantic::Template> templates)
    : options_(with_debug_verification(with_arch_defaults(std::move(options)))),
      classifier_(options_.classifier),
      analyzer_(std::move(templates), options_.analyzer) {
  config_fingerprint_ = compute_config_fingerprint(options_, analyzer_.templates());
  if (options_.verdict_cache_bytes) {
    verdict_cache_ = std::make_unique<cache::VerdictCache>(
        cache::VerdictCache::Options{options_.verdict_cache_bytes, 16});
    verdict_cache_->set_metrics(&cache_metrics());
  }
  if (options_.triage.mode != triage::TriageMode::kOff) {
    triage_ = std::make_unique<triage::TriageFilter>(options_.triage, options_.extractor,
                                                     analyzer_.templates());
  }
}

AnalysisContext::AnalysisContext(
    const NidsOptions& options,
    std::shared_ptr<const std::vector<semantic::Template>> templates)
    : extractor_(options.extractor), analyzer_(std::move(templates), options.analyzer) {}

AnalysisContext NidsEngine::make_analysis_context() const {
  return AnalysisContext(options_, analyzer_.shared_templates());
}

std::vector<Alert> NidsEngine::analyze_payload(util::ByteView payload,
                                               const Alert& meta_prototype, NidsStats* stats,
                                               std::uint64_t unit_id) const {
  AnalysisContext ctx = make_analysis_context();
  return analyze_payload(ctx, payload, meta_prototype, stats, unit_id);
}

std::vector<Alert> NidsEngine::analyze_payload(AnalysisContext& ctx, util::ByteView payload,
                                               const Alert& meta_prototype,
                                               NidsStats* stats,
                                               std::uint64_t unit_id) const {
  obs::PipelineMetrics& pm = obs::pipeline_metrics();
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool tracing = obs::Tracer::enabled();
  const bool clocked = obs::metrics_enabled() || tracing;
  const SteadyClock::time_point unit_start =
      clocked ? SteadyClock::now() : SteadyClock::time_point{};
  // This unit's spans are laid out sequentially from its start time using
  // the measured stage durations (see trace.hpp: exact costs, synthesized
  // placement).
  std::uint64_t span_cursor_us = tracing ? tracer.now_us() : 0;

  // ---------------------------------------------------- stage-0 triage
  // The screen runs *before* the cache key is hashed: a rejected unit
  // skips the SHA-256 along with stages (b)-(e), so stage-0 cost is the
  // scan itself. Rejected units never touch the cache (no lookup, no
  // insert), hence cache_hits + cache_misses + cache_bypass ==
  // units_analyzed - triage_rejected.
  if (triage_) {
    const SteadyClock::time_point triage_start =
        clocked ? SteadyClock::now() : SteadyClock::time_point{};
    const triage::TriageDecision decision =
        triage_->screen(payload, meta_prototype.dst_port);
    const double triage_seconds = clocked ? seconds_since(triage_start) : 0.0;
    constexpr auto kTriageIdx = static_cast<std::size_t>(obs::Stage::kTriage);
    pm.stage_seconds[kTriageIdx]->observe(triage_seconds);
    pm.triage_screened->add();
    if (stats) {
      ++stats->triage_screened;
      fold_stage(stats->stages[kTriageIdx], triage_seconds);
    }
    if (tracing) {
      const auto dur = static_cast<std::uint64_t>(triage_seconds * 1e6);
      tracer.record({obs::stage_name(obs::Stage::kTriage).data(), unit_id, span_cursor_us,
                     dur, payload.size(), 0});
      span_cursor_us += dur;
    }
    if (!decision.escalate) {
      pm.units->add();
      pm.triage_rejected->add();
      pm.triage_rejected_bytes->add(payload.size());
      if (stats) {
        ++stats->units_analyzed;
        ++stats->triage_rejected;
        stats->triage_rejected_bytes += payload.size();
      }
      if (clocked) {
        const double total = seconds_since(unit_start);
        pm.unit_seconds->observe(total);
        if (obs::FlightRecorder::enabled()) {
          obs::UnitRecord fr;
          fr.unit_id = unit_id;
          fr.src = meta_prototype.src.value;
          fr.payload_bytes = clamp_u32(payload.size());
          fr.frames = 0;
          fr.alerts = 0;
          fr.cache = obs::CacheDisposition::kNone;
          fr.total_us = to_flight_us(total);
          obs::FlightRecorder::instance().record(fr);
        }
      }
      return {};
    }
    pm.triage_escalated->add();
    if (stats) ++stats->triage_escalated;
  }

  // ------------------------------------------------- verdict cache lookup
  // Every unit is exactly one of hit / miss / bypass. A hit replays the
  // stored flow-independent verdict under the *current* unit's metadata
  // and skips stages (b)-(e); a miss falls through to full analysis and
  // populates the cache on the way out.
  cache::VerdictCache* vcache = verdict_cache_.get();
  const bool cacheable = vcache && payload.size() <= options_.cache_max_unit_bytes;
  if (vcache && !cacheable) {
    pm.cache_bypass->add();
    if (stats) ++stats->cache_bypass;
  }
  cache::Digest cache_key{};
  if (cacheable) {
    cache::Sha256 key_ctx;
    key_ctx.update(config_fingerprint_.data(), config_fingerprint_.size());
    key_ctx.update(payload);
    cache_key = key_ctx.finish();
    if (auto verdict = vcache->lookup(cache_key)) {
      pm.units->add();
      pm.frames->add(verdict->frames_extracted);
      pm.cache_bytes_saved->add(verdict->bytes_analyzed);
      if (stats) {
        ++stats->units_analyzed;
        ++stats->cache_hits;
        stats->cache_bytes_saved += verdict->bytes_analyzed;
        // Logical-work counters are replayed from the verdict so the
        // report describes the same detection work whether the cache
        // served it or not (see NidsStats). bytes_analyzed stays
        // fresh-only; the replayed bytes are in cache_bytes_saved.
        stats->frames_extracted += verdict->frames_extracted;
        stats->frames_emulated += verdict->frames_emulated;
        stats->emulated_steps += verdict->emulated_steps;
      }
      std::vector<Alert> alerts;
      alerts.reserve(verdict->alerts.size());
      for (const cache::CachedAlert& ca : verdict->alerts) {
        Alert a = meta_prototype;
        a.threat = ca.threat;
        a.template_name = ca.template_name;
        a.frame_reason = ca.frame_reason;
        a.frame_offset = ca.frame_offset;
        alerts.push_back(std::move(a));
      }
      pm.alerts->add(alerts.size());
      if (clocked) {
        const double seconds = seconds_since(unit_start);
        pm.unit_seconds->observe(seconds);
        if (tracing) {
          tracer.record({"cache-hit", unit_id, span_cursor_us,
                         static_cast<std::uint64_t>(seconds * 1e6), payload.size(), 0});
        }
        if (obs::FlightRecorder::enabled()) {
          obs::UnitRecord fr;
          fr.unit_id = unit_id;
          fr.src = meta_prototype.src.value;
          fr.payload_bytes = clamp_u32(payload.size());
          fr.frames = clamp_u32(verdict->frames_extracted);
          fr.alerts = clamp_u32(alerts.size());
          fr.cache = obs::CacheDisposition::kHit;
          fr.total_us = to_flight_us(seconds);
          obs::FlightRecorder::instance().record(fr);
        }
      }
      return alerts;
    }
    if (stats) ++stats->cache_misses;
  }

  // Per-unit stage totals: folded into the flight-recorder record at the
  // unit's exit (many frames can contribute to one stage per unit).
  std::array<double, obs::kStageCount> unit_stage_seconds{};
  auto record_stage = [&](obs::Stage stage, double seconds, std::uint64_t bytes) {
    const auto idx = static_cast<std::size_t>(stage);
    pm.stage_seconds[idx]->observe(seconds);
    unit_stage_seconds[idx] += seconds;
    if (stats) fold_stage(stats->stages[idx], seconds);
    if (tracing) {
      const auto dur = static_cast<std::uint64_t>(seconds * 1e6);
      tracer.record({obs::stage_name(stage).data(), unit_id, span_cursor_us, dur, bytes, 0});
      span_cursor_us += dur;
    }
  };
  SteadyClock::time_point mark{};
  auto tic = [&] {
    if (clocked) mark = SteadyClock::now();
  };
  auto toc = [&]() -> double { return clocked ? seconds_since(mark) : 0.0; };

  std::vector<Alert> alerts;
  tic();
  ctx.extractor_.extract(payload, ctx.frames_);
  const std::vector<extract::BinaryFrame>& frames = ctx.frames_;
  record_stage(obs::Stage::kExtract, toc(), payload.size());
  pm.units->add();
  pm.frames->add(frames.size());

  semantic::AnalyzerStats astats;
  if (stats) {
    ++stats->units_analyzed;
    stats->frames_extracted += frames.size();
  }
  // Per-frame disasm/lift/match costs come out of the analyzer's own
  // stats deltas rather than a wrapper clock: the three stages interleave
  // inside analyze(), so only the analyzer can attribute time correctly.
  auto analyze_frame = [&](util::ByteView data) {
    const semantic::AnalyzerStats before = astats;
    auto detections = ctx.analyzer_.analyze(data, &astats, ctx.scratch_);
    if (astats.frames > before.frames) {
      record_stage(obs::Stage::kDisasm, astats.disasm_seconds - before.disasm_seconds,
                   data.size());
      record_stage(obs::Stage::kLift, astats.lift_seconds - before.lift_seconds,
                   data.size());
      record_stage(obs::Stage::kMatch, astats.match_seconds - before.match_seconds,
                   data.size());
    }
    return detections;
  };
  // Unit-local work totals: folded into `stats` as before, and captured
  // into the cached verdict so hits can report the work they skipped.
  std::uint64_t unit_bytes_analyzed = 0;
  std::uint64_t unit_frames_emulated = 0;
  std::uint64_t unit_emulated_steps = 0;
  // One sandbox run per frame per unit: the decoder-confirmation pass and
  // the deep-analysis pass below both emulate frames, so results are
  // memoized by frame index (an emulated frame is counted once).
  ctx.emu_memo_.assign(frames.size(), std::nullopt);
  auto emulate = [&](std::size_t frame_idx) -> const emu::EmulationResult& {
    std::optional<emu::EmulationResult>& memo = ctx.emu_memo_[frame_idx];
    if (!memo) {
      util::ByteView data = frames[frame_idx].data;
      tic();
      memo = emu::emulate_frame(data, options_.emulator);
      record_stage(obs::Stage::kEmulate, toc(), data.size());
      ++unit_frames_emulated;
      unit_emulated_steps += memo->steps;
      if (stats) {
        ++stats->frames_emulated;
        stats->emulated_steps += memo->steps;
      }
    }
    return *memo;
  };

  // A template may fire on several frames of the same payload (e.g. the
  // sled frame and the after-repetition frame overlap); report it once.
  ctx.fired_names_.clear();
  auto already = [&ctx](const std::string& name) {
    return ctx.fired_names_.count(name) != 0;
  };
  for (const auto& frame : frames) {
    unit_bytes_analyzed += frame.data.size();
    if (stats) stats->bytes_analyzed += frame.data.size();
    pm.bytes_analyzed->add(frame.data.size());
    for (auto& det : analyze_frame(frame.data)) {
      if (already(det.template_name)) continue;
      ctx.fired_names_.insert(det.template_name);
      Alert a = meta_prototype;
      a.threat = det.threat;
      a.template_name = std::move(det.template_name);
      a.frame_reason = frame.reason;
      a.frame_offset = frame.src_offset;
      alerts.push_back(std::move(a));
    }
  }
  // Optional dynamic confirmation: a static decryption-loop alert must
  // correspond to code that, when actually run, decodes something.
  if (options_.confirm_decoders_by_emulation) {
    const bool has_decoder_alert =
        std::any_of(alerts.begin(), alerts.end(), [](const Alert& a) {
          return a.threat == semantic::ThreatClass::kDecryptionLoop;
        });
    if (has_decoder_alert) {
      bool confirmed = false;
      for (std::size_t fi = 0; fi < frames.size(); ++fi) {
        if (emulate(fi).frame_bytes_modified >= options_.min_decoded_bytes) {
          confirmed = true;
          break;
        }
      }
      if (!confirmed) {
        // Forget the erased names too: the deep pass below may rediscover
        // the same template on an emulation-decoded frame, and that
        // confirmed re-detection must not be suppressed.
        for (const Alert& a : alerts) {
          if (a.threat == semantic::ThreatClass::kDecryptionLoop) {
            ctx.fired_names_.erase(a.template_name);
          }
        }
        std::erase_if(alerts, [](const Alert& a) {
          return a.threat == semantic::ThreatClass::kDecryptionLoop;
        });
      }
    }
  }

  // Deep analysis: run each frame in the sandbox. A decoder decrypts
  // itself there, so the second static pass sees the plaintext behaviour
  // that the on-wire bytes hid; the syscall trace independently exposes
  // behaviour even when no static template covers it.
  if (options_.enable_emulation) {
    auto add_alert = [&](semantic::ThreatClass threat, std::string name,
                         extract::FrameReason reason, std::size_t offset) {
      if (already(name)) return;
      ctx.fired_names_.insert(name);
      Alert a = meta_prototype;
      a.threat = threat;
      a.template_name = std::move(name);
      a.frame_reason = reason;
      a.frame_offset = offset;
      alerts.push_back(std::move(a));
    };
    for (std::size_t fi = 0; fi < frames.size(); ++fi) {
      const extract::BinaryFrame& frame = frames[fi];
      const emu::EmulationResult& emu_result = emulate(fi);
      if (emu_result.spawned_shell()) {
        add_alert(semantic::ThreatClass::kShellSpawn, "emulated:spawned-shell",
                  extract::FrameReason::kEmulatedBehavior, frame.src_offset);
      }
      if (emu_result.bound_port()) {
        add_alert(semantic::ThreatClass::kPortBindShell, "emulated:bound-port",
                  extract::FrameReason::kEmulatedBehavior, frame.src_offset);
      }
      if (!emu_result.decoded_frame.empty()) {
        for (auto& det : analyze_frame(emu_result.decoded_frame)) {
          add_alert(det.threat, std::move(det.template_name),
                    extract::FrameReason::kEmulatedDecode, frame.src_offset);
        }
      }
    }
  }

  pm.alerts->add(alerts.size());
  if (stats) merge_analyzer(stats->analyzer, astats);

  if (cacheable) {
    // Strip the alerts down to their flow-independent fields, preserving
    // emission order exactly — replay must produce a byte-identical list.
    cache::Verdict verdict;
    verdict.alerts.reserve(alerts.size());
    for (const Alert& a : alerts) {
      verdict.alerts.push_back(
          cache::CachedAlert{a.threat, a.template_name, a.frame_reason, a.frame_offset});
    }
    verdict.frames_extracted = frames.size();
    verdict.bytes_analyzed = unit_bytes_analyzed;
    verdict.frames_emulated = unit_frames_emulated;
    verdict.emulated_steps = unit_emulated_steps;
    vcache->insert(cache_key, std::move(verdict));
  }
  if (clocked) {
    const double total = seconds_since(unit_start);
    pm.unit_seconds->observe(total);
    if (obs::FlightRecorder::enabled()) {
      obs::UnitRecord fr;
      fr.unit_id = unit_id;
      fr.src = meta_prototype.src.value;
      fr.payload_bytes = clamp_u32(payload.size());
      fr.frames = clamp_u32(frames.size());
      fr.alerts = clamp_u32(alerts.size());
      fr.cache = cacheable ? obs::CacheDisposition::kMiss
                 : vcache  ? obs::CacheDisposition::kBypass
                           : obs::CacheDisposition::kNone;
      fr.extract_us =
          to_flight_us(unit_stage_seconds[static_cast<std::size_t>(obs::Stage::kExtract)]);
      fr.disasm_us =
          to_flight_us(unit_stage_seconds[static_cast<std::size_t>(obs::Stage::kDisasm)]);
      fr.lift_us =
          to_flight_us(unit_stage_seconds[static_cast<std::size_t>(obs::Stage::kLift)]);
      fr.match_us =
          to_flight_us(unit_stage_seconds[static_cast<std::size_t>(obs::Stage::kMatch)]);
      fr.emulate_us =
          to_flight_us(unit_stage_seconds[static_cast<std::size_t>(obs::Stage::kEmulate)]);
      fr.total_us = to_flight_us(total);
      obs::FlightRecorder::instance().record(fr);
    }
  }
  return alerts;
}

Report NidsEngine::process_capture(const pcap::Capture& capture) {
  Report report;
  ensure_shards();
  const std::size_t nshards = shards_.size();

  /// One payload (or reassembled stream) bound for stages (b)-(e).
  struct Unit {
    util::Bytes payload;
    Alert meta;
    std::uint64_t unit_id = 0;
  };

  // Handoff queue and worker pool for stages (b)-(e). With threads <= 1
  // the queue/pool are bypassed entirely and units are analyzed inline
  // on the shard that formed them.
  const std::size_t workers = options_.threads > 1 ? options_.threads : 0;
  util::BoundedQueue<Unit> queue(options_.max_queued_units, options_.max_queued_bytes);
  queue.set_metrics(&queue_metrics());
  // Publish the configured limits the readiness checks divide by
  // (/healthz treats a 0 capacity gauge as "check disabled").
  obs::pipeline_metrics().queue_capacity->set(
      static_cast<std::int64_t>(options_.max_queued_units));
  obs::pipeline_metrics().flow_table_max_flows->set(
      static_cast<std::int64_t>(options_.max_flows));
  // Merge point for worker-local results. A named struct (rather than a
  // bare local mutex) so the shared report is GUARDED_BY its mutex and
  // the thread-safety analysis enforces that workers only reach it
  // through merge().
  struct MergePoint {
    util::Mutex mu{"Engine.report"};
    Report& report GUARDED_BY(mu);
    explicit MergePoint(Report& r) : report(r) {}
    void merge(std::vector<Alert>&& alerts, const NidsStats& local) {
      util::MutexLock lock(mu);
      report.alerts.insert(report.alerts.end(), std::make_move_iterator(alerts.begin()),
                           std::make_move_iterator(alerts.end()));
      merge_stats(report.stats, local);
    }
  } merge_point{report};

  std::optional<util::ThreadPool> pool;
  if (workers) {
    pool.emplace(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      pool->submit([this, i, &queue, &merge_point] {
        // Long-running consumer: drain units until the producers close
        // the queue, then merge local results once. Each worker owns a
        // private AnalysisContext (no shared extractor/analyzer state on
        // the hot path) and dequeues up to unit_batch units per lock
        // acquisition; verdicts are per-unit and the report is fully
        // sorted, so neither can change the output.
        obs::WorkerSlot& wslot = obs::WorkerTable::instance().slot("worker", i);
        wslot.begin_run();
        NidsStats local;
        std::vector<Alert> alerts;
        AnalysisContext ctx = make_analysis_context();
        std::vector<Unit> batch;
        for (;;) {
          // Blocked in pop_batch is *idle* (starved for input); everything
          // between dequeue and the next pop is *busy*.
          util::WallTimer idle_timer;
          const std::size_t popped = queue.pop_batch(batch, options_.unit_batch);
          wslot.add_idle(idle_timer.seconds());
          if (popped == 0) break;
          wslot.heartbeat();
          util::WallTimer busy_timer;
          for (Unit& unit : batch) {
            util::WallTimer unit_timer;
            auto found = analyze_payload(ctx, unit.payload, unit.meta, &local, unit.unit_id);
            local.analysis_seconds += unit_timer.seconds();
            alerts.insert(alerts.end(), std::make_move_iterator(found.begin()),
                          std::make_move_iterator(found.end()));
          }
          wslot.add_busy(busy_timer.seconds());
          wslot.add_units(batch.size());
        }
        merge_point.merge(std::move(alerts), local);
        wslot.end_run();
      });
    }
  }

  // Per-shard unit sinks. With workers the unit goes through the shared
  // queue; without, it is analyzed inline on the emitting shard's thread
  // — shard-local stages (b)-(e): each shard gets its own
  // AnalysisContext, and results land in that shard's stats and alert
  // list (merged after the shards join — analyze_payload is const and
  // safe to call concurrently). With threads == 0, shards == N this is
  // how the whole pipeline scales N ways with no global queue.
  std::vector<double> inline_analysis(nshards, 0.0);
  std::vector<std::vector<Alert>> inline_alerts(nshards);
  std::vector<AnalysisContext> inline_ctx;
  if (!workers) {
    inline_ctx.reserve(nshards);
    for (std::size_t si = 0; si < nshards; ++si) inline_ctx.push_back(make_analysis_context());
  }
  std::vector<PipelineShard::UnitSink> sinks;
  sinks.reserve(nshards);
  for (std::size_t si = 0; si < nshards; ++si) {
    sinks.push_back([this, si, workers, &queue, &inline_analysis, &inline_alerts,
                     &inline_ctx](util::Bytes payload, const Alert& meta,
                                  std::uint64_t unit_id) {
      if (payload.empty()) return;
      if (workers) {
        const std::size_t weight = payload.size();
        queue.push(Unit{std::move(payload), meta, unit_id}, weight);
      } else {
        util::WallTimer unit_timer;
        NidsStats& sstats = shards_[si]->stats();
        auto alerts = analyze_payload(inline_ctx[si], payload, meta, &sstats, unit_id);
        const double unit_seconds = unit_timer.seconds();
        inline_analysis[si] += unit_seconds;
        sstats.analysis_seconds += unit_seconds;
        auto& out = inline_alerts[si];
        out.insert(out.end(), std::make_move_iterator(alerts.begin()),
                   std::make_move_iterator(alerts.end()));
      }
    });
  }

  for (auto& shard : shards_) shard->begin_capture();

  if (nshards == 1) {
    // ------------------------------- stage (a), single shard (no dispatcher)
    // Classification runs directly on the caller thread; classify wall is
    // the caller's stage-(a) wall minus any inline analysis it triggered.
    util::WallTimer classify_timer;
    for (const pcap::Record& rec : capture.records) {
      shards_[0]->process_record(rec, sinks[0]);
    }
    shards_[0]->finish_capture(sinks[0]);
    shards_[0]->stats().classify_seconds = classify_timer.seconds() - inline_analysis[0];
  } else {
    // --------------------------------- stage (a), source-affine shard fanout
    // The caller thread only peeks each frame's IPv4 source and routes the
    // record; every shard thread runs the full stage (a) for its sources.
    // Records are batched to amortize queue locking, and the per-shard
    // queues are shallow so a slow shard backpressures the dispatcher
    // instead of buffering the capture.
    using Batch = std::vector<const pcap::Record*>;
    constexpr std::size_t kBatchRecords = 64;
    constexpr std::size_t kQueueBatches = 16;
    std::vector<std::unique_ptr<util::BoundedQueue<Batch>>> shard_queues;
    std::vector<util::QueueMetrics> shard_queue_metrics(nshards);
    shard_queues.reserve(nshards);
    obs::shard_queue_capacity_gauge().set(kQueueBatches);
    for (std::size_t si = 0; si < nshards; ++si) {
      auto q = std::make_unique<util::BoundedQueue<Batch>>(kQueueBatches);
      const obs::ShardMetrics sm = obs::shard_metrics(si);
      shard_queue_metrics[si].depth = sm.queue_depth;
      shard_queue_metrics[si].depth_peak = sm.queue_depth_peak;
      q->set_metrics(&shard_queue_metrics[si]);
      shard_queues.push_back(std::move(q));
    }
    {
      util::ThreadPool shard_pool(nshards);
      for (std::size_t si = 0; si < nshards; ++si) {
        shard_pool.submit([this, si, &shard_queues, &sinks, &inline_analysis] {
          PipelineShard& shard = *shards_[si];
          auto& q = *shard_queues[si];
          obs::WorkerSlot& sslot = obs::WorkerTable::instance().slot("shard", si);
          sslot.begin_run();
          double wall = 0.0;
          for (;;) {
            util::WallTimer idle_timer;  // blocked on the dispatch queue
            auto batch = q.pop();
            sslot.add_idle(idle_timer.seconds());
            if (!batch) break;
            sslot.heartbeat();
            util::WallTimer batch_timer;
            for (const pcap::Record* rec : *batch) shard.process_record(*rec, sinks[si]);
            const double busy = batch_timer.seconds();
            wall += busy;
            sslot.add_busy(busy);
            sslot.add_units(batch->size());
          }
          util::WallTimer drain_timer;
          shard.finish_capture(sinks[si]);
          const double drain = drain_timer.seconds();
          wall += drain;
          sslot.add_busy(drain);
          // Same stage-(a) definition the caller thread uses at
          // shards == 1: producer wall minus inline analysis.
          shard.stats().classify_seconds = wall - inline_analysis[si];
          sslot.end_run();
        });
      }

      util::WallTimer dispatch_timer;
      std::vector<Batch> pending(nshards);
      for (const pcap::Record& rec : capture.records) {
        // Frames whose source cannot be peeked (non-IP — any shard would
        // classify them identically) all ride to shard 0.
        const auto src = net::peek_src(rec.data);
        const std::size_t si = src ? shard_index_for(*src, nshards) : 0;
        Batch& batch = pending[si];
        if (batch.empty()) batch.reserve(kBatchRecords);
        batch.push_back(&rec);
        if (batch.size() >= kBatchRecords) {
          shard_queues[si]->push(std::move(batch));
          batch = Batch{};
        }
      }
      for (std::size_t si = 0; si < nshards; ++si) {
        if (!pending[si].empty()) shard_queues[si]->push(std::move(pending[si]));
        shard_queues[si]->close();
      }
      report.stats.dispatch_seconds = dispatch_timer.seconds();
      shard_pool.wait_idle();
    }
  }

  // Fold per-shard stage-(a) results. The shard threads are joined, and
  // the worker queue is still open, so nothing else touches report here.
  for (std::size_t si = 0; si < nshards; ++si) {
    merge_stats(report.stats, shards_[si]->stats());
    auto& found = inline_alerts[si];
    report.alerts.insert(report.alerts.end(), std::make_move_iterator(found.begin()),
                         std::make_move_iterator(found.end()));
  }

  // Streaming drain: close the queue so the consumers finish the backlog
  // and merge their results, then join them. analysis_seconds accrues
  // per-unit in the workers and arrives via merge_stats (the inline path
  // added it to the shard's stats in the sink).
  queue.close();
  if (pool) {
    pool->wait_idle();
    pool.reset();
  }

  // Deterministic alert order regardless of shard routing or worker
  // scheduling: the sort key covers every alert field (a partial key left
  // alerts differing only in frame_offset/ports in schedule-dependent
  // order), so 1-shard and N-shard runs render byte-identical alerts.
  std::sort(report.alerts.begin(), report.alerts.end(), alert_less);
  return report;
}

}  // namespace senids::core
