#include "core/engine.hpp"

#include <algorithm>
#include <cstdio>

#include "net/defrag.hpp"
#include "net/flow.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace senids::core {

std::string Alert::str() const {
  char buf[256];
  std::snprintf(buf, sizeof buf, "[%s] %s:%u -> %s:%u template=%s frame=%s+%zu",
                std::string(semantic::threat_class_name(threat)).c_str(), src.str().c_str(),
                src_port, dst.str().c_str(), dst_port, template_name.c_str(),
                std::string(extract::frame_reason_name(frame_reason)).c_str(), frame_offset);
  return buf;
}

bool Report::detected(semantic::ThreatClass threat) const {
  return std::any_of(alerts.begin(), alerts.end(),
                     [threat](const Alert& a) { return a.threat == threat; });
}

std::string Report::str() const {
  std::string out;
  char buf[160];
  auto line = [&out, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
    out.push_back('\n');
  };
  line("packets            : %zu (%zu non-IP)", stats.packets, stats.non_ip);
  line("suspicious packets : %zu", stats.suspicious_packets);
  line("analysis units     : %zu", stats.units_analyzed);
  line("frames extracted   : %zu (%zu emulated)", stats.frames_extracted,
       stats.frames_emulated);
  line("bytes disassembled : %zu", stats.bytes_analyzed);
  line("classify/analyze   : %.3f s / %.3f s", stats.classify_seconds,
       stats.analysis_seconds);
  line("alerts             : %zu", alerts.size());
  for (const Alert& a : alerts) {
    out += "  ";
    out += a.str();
    out.push_back('\n');
  }
  // Per-source rollup.
  std::vector<std::pair<std::uint32_t, std::size_t>> sources;
  for (const Alert& a : alerts) {
    bool found = false;
    for (auto& [src, n] : sources) {
      if (src == a.src.value) {
        ++n;
        found = true;
      }
    }
    if (!found) sources.emplace_back(a.src.value, 1);
  }
  if (!sources.empty()) {
    out += "offending sources  :\n";
    for (const auto& [src, n] : sources) {
      line("  %-18s %zu alert(s)", net::Ipv4Addr{src}.str().c_str(), n);
    }
  }
  return out;
}

NidsEngine::NidsEngine(NidsOptions options)
    : NidsEngine(options, semantic::make_standard_library()) {}

NidsEngine::NidsEngine(NidsOptions options, std::vector<semantic::Template> templates)
    : options_(options),
      classifier_(options.classifier),
      extractor_(options.extractor),
      analyzer_(std::move(templates), options.analyzer) {}

std::vector<Alert> NidsEngine::analyze_payload(util::ByteView payload,
                                               const Alert& meta_prototype,
                                               NidsStats* stats) const {
  std::vector<Alert> alerts;
  const auto frames = extractor_.extract(payload);
  semantic::AnalyzerStats astats;
  if (stats) {
    ++stats->units_analyzed;
    stats->frames_extracted += frames.size();
  }
  // A template may fire on several frames of the same payload (e.g. the
  // sled frame and the after-repetition frame overlap); report it once.
  auto already = [&alerts](const std::string& name) {
    return std::any_of(alerts.begin(), alerts.end(),
                       [&name](const Alert& a) { return a.template_name == name; });
  };
  for (const auto& frame : frames) {
    if (stats) stats->bytes_analyzed += frame.data.size();
    for (auto& det : analyzer_.analyze(frame.data, &astats)) {
      if (already(det.template_name)) continue;
      Alert a = meta_prototype;
      a.threat = det.threat;
      a.template_name = std::move(det.template_name);
      a.frame_reason = frame.reason;
      a.frame_offset = frame.src_offset;
      alerts.push_back(std::move(a));
    }
  }
  // Optional dynamic confirmation: a static decryption-loop alert must
  // correspond to code that, when actually run, decodes something.
  if (options_.confirm_decoders_by_emulation) {
    const bool has_decoder_alert =
        std::any_of(alerts.begin(), alerts.end(), [](const Alert& a) {
          return a.threat == semantic::ThreatClass::kDecryptionLoop;
        });
    if (has_decoder_alert) {
      bool confirmed = false;
      for (const auto& frame : frames) {
        emu::EmulationResult emu_result =
            emu::emulate_frame(frame.data, options_.emulator);
        if (stats) {
          ++stats->frames_emulated;
          stats->emulated_steps += emu_result.steps;
        }
        if (emu_result.frame_bytes_modified >= options_.min_decoded_bytes) {
          confirmed = true;
          break;
        }
      }
      if (!confirmed) {
        std::erase_if(alerts, [](const Alert& a) {
          return a.threat == semantic::ThreatClass::kDecryptionLoop;
        });
      }
    }
  }

  // Deep analysis: run each frame in the sandbox. A decoder decrypts
  // itself there, so the second static pass sees the plaintext behaviour
  // that the on-wire bytes hid; the syscall trace independently exposes
  // behaviour even when no static template covers it.
  if (options_.enable_emulation) {
    auto add_alert = [&](semantic::ThreatClass threat, std::string name,
                         extract::FrameReason reason, std::size_t offset) {
      if (already(name)) return;
      Alert a = meta_prototype;
      a.threat = threat;
      a.template_name = std::move(name);
      a.frame_reason = reason;
      a.frame_offset = offset;
      alerts.push_back(std::move(a));
    };
    for (const auto& frame : frames) {
      emu::EmulationResult emu_result = emu::emulate_frame(frame.data, options_.emulator);
      if (stats) {
        ++stats->frames_emulated;
        stats->emulated_steps += emu_result.steps;
      }
      if (emu_result.spawned_shell()) {
        add_alert(semantic::ThreatClass::kShellSpawn, "emulated:spawned-shell",
                  extract::FrameReason::kEmulatedBehavior, frame.src_offset);
      }
      if (emu_result.bound_port()) {
        add_alert(semantic::ThreatClass::kPortBindShell, "emulated:bound-port",
                  extract::FrameReason::kEmulatedBehavior, frame.src_offset);
      }
      if (!emu_result.decoded_frame.empty()) {
        for (auto& det : analyzer_.analyze(emu_result.decoded_frame, &astats)) {
          add_alert(det.threat, std::move(det.template_name),
                    extract::FrameReason::kEmulatedDecode, frame.src_offset);
        }
      }
    }
  }

  if (stats) {
    stats->analyzer.frames += astats.frames;
    stats->analyzer.candidate_runs += astats.candidate_runs;
    stats->analyzer.traces += astats.traces;
    stats->analyzer.instructions_lifted += astats.instructions_lifted;
    stats->analyzer.template_matches_tried += astats.template_matches_tried;
  }
  return alerts;
}

Report NidsEngine::process_capture(const pcap::Capture& capture) {
  Report report;

  /// One payload (or reassembled stream) bound for stages (b)-(e).
  struct Unit {
    util::Bytes payload;
    Alert meta;
  };
  std::vector<Unit> units;

  struct FlowState {
    net::TcpReassembler reassembler;
    Alert meta;
    explicit FlowState(std::size_t cap) : reassembler(cap) {}
  };
  net::FlowMap<FlowState> flows;
  net::Defragmenter defrag;

  util::WallTimer classify_timer;

  // Route one transport-level packet into the flow table / unit list.
  auto dispatch = [&](net::ParsedPacket& pkt) {
    Alert meta;
    meta.ts_sec = pkt.ts_sec;
    meta.src = pkt.ip.src;
    meta.dst = pkt.ip.dst;
    meta.src_port = pkt.src_port();
    meta.dst_port = pkt.dst_port();

    if (pkt.transport == net::Transport::kTcp && options_.reassemble_tcp) {
      auto [it, _] = flows.try_emplace(net::FlowKey::of(pkt), options_.max_stream_bytes);
      it->second.meta = meta;
      it->second.reassembler.feed(pkt.tcp.seq, pkt.tcp.flags, pkt.payload);
      if (it->second.reassembler.closed()) {
        if (!it->second.reassembler.stream().empty()) {
          units.push_back(Unit{it->second.reassembler.stream(), it->second.meta});
        }
        flows.erase(it);
      }
    } else if (!pkt.payload.empty()) {
      units.push_back(Unit{std::move(pkt.payload), meta});
    }
  };

  // ---------------------------------------------- stage (a): classification
  for (const pcap::Record& rec : capture.records) {
    ++report.stats.packets;
    auto pkt = net::parse_frame(rec.data, rec.ts_sec, rec.ts_usec);
    if (!pkt) {
      ++report.stats.non_ip;
      continue;
    }
    const classify::Verdict verdict = classifier_.observe(*pkt);

    if (pkt->transport == net::Transport::kFragment) {
      // Reassemble regardless of verdict: a tainted source's datagram may
      // complete with fragments that arrived before the taint.
      auto datagram = defrag.feed(pkt->ip, pkt->payload);
      if (!datagram) continue;
      auto whole = net::parse_reassembled(datagram->header, datagram->payload,
                                          pkt->ts_sec, pkt->ts_usec);
      if (!whole) continue;
      if (classifier_.check(*whole) != classify::Verdict::kAnalyze) continue;
      ++report.stats.suspicious_packets;
      dispatch(*whole);
      continue;
    }

    if (verdict != classify::Verdict::kAnalyze) continue;
    ++report.stats.suspicious_packets;
    dispatch(*pkt);
  }
  // Flush flows that never closed (truncated captures).
  for (auto& [key, state] : flows) {
    if (!state.reassembler.stream().empty()) {
      units.push_back(Unit{state.reassembler.stream(), state.meta});
    }
  }
  flows.clear();
  report.stats.classify_seconds = classify_timer.seconds();

  // ------------------------------------- stages (b)-(e): per-unit analysis
  util::WallTimer analysis_timer;
  if (options_.threads <= 1) {
    for (const Unit& u : units) {
      auto alerts = analyze_payload(u.payload, u.meta, &report.stats);
      report.alerts.insert(report.alerts.end(), alerts.begin(), alerts.end());
    }
  } else {
    std::mutex mu;
    util::ThreadPool pool(options_.threads);
    for (const Unit& u : units) {
      pool.submit([this, &u, &mu, &report] {
        NidsStats local;
        auto alerts = analyze_payload(u.payload, u.meta, &local);
        std::lock_guard lock(mu);
        report.alerts.insert(report.alerts.end(), std::make_move_iterator(alerts.begin()),
                             std::make_move_iterator(alerts.end()));
        report.stats.units_analyzed += local.units_analyzed;
        report.stats.frames_extracted += local.frames_extracted;
        report.stats.bytes_analyzed += local.bytes_analyzed;
        report.stats.frames_emulated += local.frames_emulated;
        report.stats.emulated_steps += local.emulated_steps;
        report.stats.analyzer.frames += local.analyzer.frames;
        report.stats.analyzer.candidate_runs += local.analyzer.candidate_runs;
        report.stats.analyzer.traces += local.analyzer.traces;
        report.stats.analyzer.instructions_lifted += local.analyzer.instructions_lifted;
        report.stats.analyzer.template_matches_tried +=
            local.analyzer.template_matches_tried;
      });
    }
    pool.wait_idle();
  }
  report.stats.analysis_seconds = analysis_timer.seconds();

  // Deterministic alert order regardless of worker scheduling.
  std::sort(report.alerts.begin(), report.alerts.end(), [](const Alert& a, const Alert& b) {
    return std::tie(a.ts_sec, a.src.value, a.dst.value, a.template_name) <
           std::tie(b.ts_sec, b.src.value, b.dst.value, b.template_name);
  });
  return report;
}

}  // namespace senids::core
