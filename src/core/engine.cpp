#include "core/engine.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <optional>

#include "net/defrag.hpp"
#include "net/flow.hpp"
#include "util/queue.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace senids::core {

namespace {

/// printf into a growing string: measures first, then formats into the
/// exact space. No fixed buffer, so long template names never truncate.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_format(std::string& out, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list measured;
  va_copy(measured, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, measured);
  va_end(measured);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt, args);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

void merge_stats(NidsStats& into, const NidsStats& from) {
  into.units_analyzed += from.units_analyzed;
  into.frames_extracted += from.frames_extracted;
  into.bytes_analyzed += from.bytes_analyzed;
  into.frames_emulated += from.frames_emulated;
  into.emulated_steps += from.emulated_steps;
  into.analyzer.frames += from.analyzer.frames;
  into.analyzer.candidate_runs += from.analyzer.candidate_runs;
  into.analyzer.traces += from.analyzer.traces;
  into.analyzer.instructions_lifted += from.analyzer.instructions_lifted;
  into.analyzer.template_matches_tried += from.analyzer.template_matches_tried;
}

}  // namespace

bool alert_less(const Alert& a, const Alert& b) noexcept {
  return std::tie(a.ts_sec, a.src.value, a.dst.value, a.src_port, a.dst_port,
                  a.template_name, a.threat, a.frame_reason, a.frame_offset) <
         std::tie(b.ts_sec, b.src.value, b.dst.value, b.src_port, b.dst_port,
                  b.template_name, b.threat, b.frame_reason, b.frame_offset);
}

std::string Alert::str() const {
  std::string out;
  append_format(out, "[%s] %s:%u -> %s:%u template=%s frame=%s+%zu",
                std::string(semantic::threat_class_name(threat)).c_str(), src.str().c_str(),
                src_port, dst.str().c_str(), dst_port, template_name.c_str(),
                std::string(extract::frame_reason_name(frame_reason)).c_str(), frame_offset);
  return out;
}

bool Report::detected(semantic::ThreatClass threat) const {
  return std::any_of(alerts.begin(), alerts.end(),
                     [threat](const Alert& a) { return a.threat == threat; });
}

std::string Report::str() const {
  std::string out;
  auto line = [&out](const char* fmt, auto... args) {
    append_format(out, fmt, args...);
    out.push_back('\n');
  };
  line("packets            : %zu (%zu non-IP)", stats.packets, stats.non_ip);
  line("suspicious packets : %zu", stats.suspicious_packets);
  line("analysis units     : %zu", stats.units_analyzed);
  line("frames extracted   : %zu (%zu emulated)", stats.frames_extracted,
       stats.frames_emulated);
  line("bytes disassembled : %zu", stats.bytes_analyzed);
  line("flow evictions     : %zu idle, %zu overflow, %zu streams truncated",
       stats.flows_evicted_idle, stats.flows_evicted_overflow, stats.streams_truncated);
  line("classify/analyze   : %.3f s / %.3f s", stats.classify_seconds,
       stats.analysis_seconds);
  line("alerts             : %zu", alerts.size());
  for (const Alert& a : alerts) {
    out += "  ";
    out += a.str();
    out.push_back('\n');
  }
  // Per-source rollup.
  std::vector<std::pair<std::uint32_t, std::size_t>> sources;
  for (const Alert& a : alerts) {
    bool found = false;
    for (auto& [src, n] : sources) {
      if (src == a.src.value) {
        ++n;
        found = true;
      }
    }
    if (!found) sources.emplace_back(a.src.value, 1);
  }
  if (!sources.empty()) {
    out += "offending sources  :\n";
    for (const auto& [src, n] : sources) {
      line("  %-18s %zu alert(s)", net::Ipv4Addr{src}.str().c_str(), n);
    }
  }
  return out;
}

NidsEngine::NidsEngine(NidsOptions options)
    : NidsEngine(options, semantic::make_standard_library()) {}

NidsEngine::NidsEngine(NidsOptions options, std::vector<semantic::Template> templates)
    : options_(options),
      classifier_(options.classifier),
      extractor_(options.extractor),
      analyzer_(std::move(templates), options.analyzer) {}

std::vector<Alert> NidsEngine::analyze_payload(util::ByteView payload,
                                               const Alert& meta_prototype,
                                               NidsStats* stats) const {
  std::vector<Alert> alerts;
  const auto frames = extractor_.extract(payload);
  semantic::AnalyzerStats astats;
  if (stats) {
    ++stats->units_analyzed;
    stats->frames_extracted += frames.size();
  }
  // A template may fire on several frames of the same payload (e.g. the
  // sled frame and the after-repetition frame overlap); report it once.
  auto already = [&alerts](const std::string& name) {
    return std::any_of(alerts.begin(), alerts.end(),
                       [&name](const Alert& a) { return a.template_name == name; });
  };
  for (const auto& frame : frames) {
    if (stats) stats->bytes_analyzed += frame.data.size();
    for (auto& det : analyzer_.analyze(frame.data, &astats)) {
      if (already(det.template_name)) continue;
      Alert a = meta_prototype;
      a.threat = det.threat;
      a.template_name = std::move(det.template_name);
      a.frame_reason = frame.reason;
      a.frame_offset = frame.src_offset;
      alerts.push_back(std::move(a));
    }
  }
  // Optional dynamic confirmation: a static decryption-loop alert must
  // correspond to code that, when actually run, decodes something.
  if (options_.confirm_decoders_by_emulation) {
    const bool has_decoder_alert =
        std::any_of(alerts.begin(), alerts.end(), [](const Alert& a) {
          return a.threat == semantic::ThreatClass::kDecryptionLoop;
        });
    if (has_decoder_alert) {
      bool confirmed = false;
      for (const auto& frame : frames) {
        emu::EmulationResult emu_result =
            emu::emulate_frame(frame.data, options_.emulator);
        if (stats) {
          ++stats->frames_emulated;
          stats->emulated_steps += emu_result.steps;
        }
        if (emu_result.frame_bytes_modified >= options_.min_decoded_bytes) {
          confirmed = true;
          break;
        }
      }
      if (!confirmed) {
        std::erase_if(alerts, [](const Alert& a) {
          return a.threat == semantic::ThreatClass::kDecryptionLoop;
        });
      }
    }
  }

  // Deep analysis: run each frame in the sandbox. A decoder decrypts
  // itself there, so the second static pass sees the plaintext behaviour
  // that the on-wire bytes hid; the syscall trace independently exposes
  // behaviour even when no static template covers it.
  if (options_.enable_emulation) {
    auto add_alert = [&](semantic::ThreatClass threat, std::string name,
                         extract::FrameReason reason, std::size_t offset) {
      if (already(name)) return;
      Alert a = meta_prototype;
      a.threat = threat;
      a.template_name = std::move(name);
      a.frame_reason = reason;
      a.frame_offset = offset;
      alerts.push_back(std::move(a));
    };
    for (const auto& frame : frames) {
      emu::EmulationResult emu_result = emu::emulate_frame(frame.data, options_.emulator);
      if (stats) {
        ++stats->frames_emulated;
        stats->emulated_steps += emu_result.steps;
      }
      if (emu_result.spawned_shell()) {
        add_alert(semantic::ThreatClass::kShellSpawn, "emulated:spawned-shell",
                  extract::FrameReason::kEmulatedBehavior, frame.src_offset);
      }
      if (emu_result.bound_port()) {
        add_alert(semantic::ThreatClass::kPortBindShell, "emulated:bound-port",
                  extract::FrameReason::kEmulatedBehavior, frame.src_offset);
      }
      if (!emu_result.decoded_frame.empty()) {
        for (auto& det : analyzer_.analyze(emu_result.decoded_frame, &astats)) {
          add_alert(det.threat, std::move(det.template_name),
                    extract::FrameReason::kEmulatedDecode, frame.src_offset);
        }
      }
    }
  }

  if (stats) {
    stats->analyzer.frames += astats.frames;
    stats->analyzer.candidate_runs += astats.candidate_runs;
    stats->analyzer.traces += astats.traces;
    stats->analyzer.instructions_lifted += astats.instructions_lifted;
    stats->analyzer.template_matches_tried += astats.template_matches_tried;
  }
  return alerts;
}

Report NidsEngine::process_capture(const pcap::Capture& capture) {
  Report report;

  /// One payload (or reassembled stream) bound for stages (b)-(e).
  struct Unit {
    util::Bytes payload;
    Alert meta;
  };

  // Handoff queue and worker pool. With threads <= 1 the queue/pool are
  // bypassed entirely and units are analyzed inline as they form.
  const std::size_t workers = options_.threads > 1 ? options_.threads : 0;
  util::BoundedQueue<Unit> queue(options_.max_queued_units, options_.max_queued_bytes);
  std::mutex mu;  // guards report.alerts and the analysis stat fields
  double serial_analysis_seconds = 0.0;

  util::WallTimer analysis_timer;
  std::optional<util::ThreadPool> pool;
  if (workers) {
    pool.emplace(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      pool->submit([this, &queue, &mu, &report] {
        // Long-running consumer: drain units until the producer closes
        // the queue, then merge local results once.
        NidsStats local;
        std::vector<Alert> alerts;
        while (auto unit = queue.pop()) {
          auto found = analyze_payload(unit->payload, unit->meta, &local);
          alerts.insert(alerts.end(), std::make_move_iterator(found.begin()),
                        std::make_move_iterator(found.end()));
        }
        std::lock_guard lock(mu);
        report.alerts.insert(report.alerts.end(), std::make_move_iterator(alerts.begin()),
                             std::make_move_iterator(alerts.end()));
        merge_stats(report.stats, local);
      });
    }
  }

  auto emit = [&](util::Bytes payload, const Alert& meta) {
    if (payload.empty()) return;
    if (workers) {
      const std::size_t weight = payload.size();
      queue.push(Unit{std::move(payload), meta}, weight);
    } else {
      util::WallTimer unit_timer;
      auto alerts = analyze_payload(payload, meta, &report.stats);
      serial_analysis_seconds += unit_timer.seconds();
      report.alerts.insert(report.alerts.end(), std::make_move_iterator(alerts.begin()),
                           std::make_move_iterator(alerts.end()));
    }
  };

  struct FlowState {
    net::TcpReassembler reassembler;
    Alert meta;
    explicit FlowState(std::size_t cap) : reassembler(cap, cap) {}
  };
  net::BoundedFlowTable<FlowState> flows;
  net::Defragmenter defrag;

  // A flow is flushed early once its assembled stream reaches the cap:
  // the full prefix becomes a unit and the flow state is released (a
  // later segment simply re-anchors a fresh flow).
  auto stream_full = [this](const FlowState& state) {
    return state.reassembler.truncated() ||
           state.reassembler.stream().size() >= options_.max_stream_bytes;
  };
  // Flush a flow's assembled stream as one analysis unit (close, eviction,
  // stream cap, or end-of-capture).
  auto flush_flow = [&](FlowState& state) {
    if (stream_full(state)) ++report.stats.streams_truncated;
    util::Bytes stream = state.reassembler.take_stream();
    if (!stream.empty()) emit(std::move(stream), state.meta);
  };
  auto flush_sink = [&](const net::FlowKey&, FlowState& state) { flush_flow(state); };

  util::WallTimer classify_timer;

  // Route one transport-level packet into the flow table / unit queue.
  auto dispatch = [&](net::ParsedPacket& pkt) {
    Alert meta;
    meta.ts_sec = pkt.ts_sec;
    meta.src = pkt.ip.src;
    meta.dst = pkt.ip.dst;
    meta.src_port = pkt.src_port();
    meta.dst_port = pkt.dst_port();

    if (pkt.transport == net::Transport::kTcp && options_.reassemble_tcp) {
      if (options_.flow_idle_timeout_sec) {
        report.stats.flows_evicted_idle +=
            flows.evict_idle(pkt.ts_sec, options_.flow_idle_timeout_sec, flush_sink);
      }
      const net::FlowKey key = net::FlowKey::of(pkt);
      auto [state, created] = flows.touch(key, pkt.ts_sec, options_.max_stream_bytes);
      if (created) {
        // The flow's alert metadata is pinned to its *first* suspicious
        // segment (timestamp of first contact, not of the last segment).
        state->meta = meta;
        if (options_.max_flows && flows.size() > options_.max_flows &&
            flows.evict_oldest(flush_sink)) {
          ++report.stats.flows_evicted_overflow;
        }
      }
      state->reassembler.feed(pkt.tcp.seq, pkt.tcp.flags, pkt.payload);
      if (state->reassembler.closed() || stream_full(*state)) {
        flush_flow(*state);
        flows.erase(key);
      }
    } else if (!pkt.payload.empty()) {
      emit(std::move(pkt.payload), meta);
    }
  };

  // ---------------------------------------------- stage (a): classification
  for (const pcap::Record& rec : capture.records) {
    ++report.stats.packets;
    auto pkt = net::parse_frame(rec.data, rec.ts_sec, rec.ts_usec);
    if (!pkt) {
      ++report.stats.non_ip;
      continue;
    }
    const classify::Verdict verdict = classifier_.observe(*pkt);

    if (pkt->transport == net::Transport::kFragment) {
      // Reassemble regardless of verdict: a tainted source's datagram may
      // complete with fragments that arrived before the taint.
      auto datagram = defrag.feed(pkt->ip, pkt->payload);
      if (!datagram) continue;
      auto whole = net::parse_reassembled(datagram->header, datagram->payload,
                                          pkt->ts_sec, pkt->ts_usec);
      if (!whole) continue;
      if (classifier_.check(*whole) != classify::Verdict::kAnalyze) continue;
      ++report.stats.suspicious_packets;
      dispatch(*whole);
      continue;
    }

    if (verdict != classify::Verdict::kAnalyze) continue;
    ++report.stats.suspicious_packets;
    dispatch(*pkt);
  }
  // Flush flows that never closed (truncated captures), oldest first.
  flows.drain(flush_sink);
  report.stats.classify_seconds = classify_timer.seconds() - serial_analysis_seconds;

  // Streaming drain: close the queue so the consumers finish the backlog
  // and merge their results, then join them.
  queue.close();
  if (pool) {
    pool->wait_idle();
    pool.reset();
    report.stats.analysis_seconds = analysis_timer.seconds();
  } else {
    report.stats.analysis_seconds = serial_analysis_seconds;
  }

  // Deterministic alert order regardless of worker scheduling: the sort
  // key covers every alert field (a partial key left alerts differing
  // only in frame_offset/ports in schedule-dependent order).
  std::sort(report.alerts.begin(), report.alerts.end(), alert_less);
  return report;
}

}  // namespace senids::core
