// Streaming analysis session: the deployment-shaped interface. Feed
// frames as they arrive; alerts come back incrementally. Holds all
// stage-(a) state (classifier taint, TCP reassembly, IP defragmentation)
// across calls, with the same bounded flow table the batch engine uses:
// idle flows time out, the live-flow count is capped, and over-long
// streams are flushed truncated — a session pinned to live traffic can
// run indefinitely with bounded memory.
//
// Threading model (checked in the concurrency-safety audit, DESIGN.md
// "Concurrency safety"): a LiveSession is deliberately lock-free by
// being thread-confined — all state is owned by the one thread calling
// feed()/finish(), so there is nothing for GUARDED_BY to guard. Run one
// session per worker thread for parallel deployments; sharing one
// session across threads is a data race by contract.
#pragma once

#include <functional>

#include "core/engine.hpp"
#include "net/defrag.hpp"
#include "obs/workers.hpp"

namespace senids::core {

class LiveSession {
 public:
  /// Called for every alert as soon as its analysis unit completes.
  using AlertSink = std::function<void(const Alert&)>;

  /// The engine must outlive the session. Analysis runs inline (the
  /// session is single-threaded by design; run one session per worker for
  /// parallel deployments). Flow eviction follows the engine's
  /// flow_idle_timeout_sec / max_flows / max_stream_bytes options.
  LiveSession(NidsEngine& engine, AlertSink sink);
  ~LiveSession();

  /// Feed one captured Ethernet frame.
  void feed(util::ByteView frame, std::uint32_t ts_sec = 0, std::uint32_t ts_usec = 0);

  /// Flush flows that never closed (end of capture / shutdown).
  void finish();

  [[nodiscard]] const NidsStats& stats() const noexcept { return stats_; }

  /// Alerts delivered to the sink so far.
  [[nodiscard]] std::size_t alerts_emitted() const noexcept { return alerts_emitted_; }

 private:
  void analyze_unit(util::ByteView payload, const Alert& meta, std::uint64_t unit_id);
  void dispatch(net::ParsedPacket& pkt);
  /// Periodic one-line metrics snapshot through util::Log, driven by
  /// capture time (NidsOptions::metrics_log_interval_sec; 0 = off).
  void maybe_log_metrics(std::uint32_t ts_sec);

  NidsEngine& engine_;
  /// The session's reusable analysis state — a session is one logical
  /// worker, so it holds one context for its lifetime instead of paying
  /// a fresh extractor/analyzer/scratch allocation per unit.
  AnalysisContext ctx_;
  /// Worker-attribution slot ("session", N): busy is the wall inside
  /// feed()/finish(), idle the gaps between feeds on the caller thread.
  obs::WorkerSlot& worker_slot_;
  std::uint64_t last_feed_end_ns_ = 0;
  AlertSink sink_;
  NidsStats stats_;
  std::size_t alerts_emitted_ = 0;
  std::uint32_t next_metrics_log_ts_ = 0;
  /// Classifier dark-space evictions at construction: the classifier can
  /// outlive (and predate) this session, so stats_ reports the delta.
  std::size_t dark_evictions_base_ = 0;

  struct FlowState {
    net::TcpReassembler reassembler;
    Alert meta;
    double reassemble_seconds = 0.0;  // accrued per feed, emitted at flush
    explicit FlowState(std::size_t cap) : reassembler(cap, cap) {}
  };
  [[nodiscard]] bool stream_full(const FlowState& state) const;
  void flush_flow(FlowState& state);

  net::BoundedFlowTable<FlowState> flows_;
  net::Defragmenter defrag_;
};

}  // namespace senids::core
