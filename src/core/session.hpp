// Streaming analysis session: the deployment-shaped interface. Feed
// frames as they arrive; alerts come back incrementally. Holds all
// stage-(a) state (classifier taint, TCP reassembly, IP defragmentation)
// across calls, with the same bounded flow table the batch engine uses:
// idle flows time out, the live-flow count is capped, and over-long
// streams are flushed truncated — a session pinned to live traffic can
// run indefinitely with bounded memory.
#pragma once

#include <functional>

#include "core/engine.hpp"
#include "net/defrag.hpp"

namespace senids::core {

class LiveSession {
 public:
  /// Called for every alert as soon as its analysis unit completes.
  using AlertSink = std::function<void(const Alert&)>;

  /// The engine must outlive the session. Analysis runs inline (the
  /// session is single-threaded by design; run one session per worker for
  /// parallel deployments). Flow eviction follows the engine's
  /// flow_idle_timeout_sec / max_flows / max_stream_bytes options.
  LiveSession(NidsEngine& engine, AlertSink sink);

  /// Feed one captured Ethernet frame.
  void feed(util::ByteView frame, std::uint32_t ts_sec = 0, std::uint32_t ts_usec = 0);

  /// Flush flows that never closed (end of capture / shutdown).
  void finish();

  [[nodiscard]] const NidsStats& stats() const noexcept { return stats_; }

 private:
  void analyze_unit(util::ByteView payload, const Alert& meta);
  void dispatch(net::ParsedPacket& pkt);

  NidsEngine& engine_;
  AlertSink sink_;
  NidsStats stats_;

  struct FlowState {
    net::TcpReassembler reassembler;
    Alert meta;
    explicit FlowState(std::size_t cap) : reassembler(cap, cap) {}
  };
  [[nodiscard]] bool stream_full(const FlowState& state) const;
  void flush_flow(FlowState& state);

  net::BoundedFlowTable<FlowState> flows_;
  net::Defragmenter defrag_;
};

}  // namespace senids::core
