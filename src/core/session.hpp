// Streaming analysis session: the deployment-shaped interface. Feed
// frames as they arrive; alerts come back incrementally. Holds all
// stage-(a) state (classifier taint, TCP reassembly, IP defragmentation)
// across calls. NidsEngine::process_capture is a batch wrapper over this.
#pragma once

#include <functional>

#include "core/engine.hpp"
#include "net/defrag.hpp"

namespace senids::core {

class LiveSession {
 public:
  /// Called for every alert as soon as its analysis unit completes.
  using AlertSink = std::function<void(const Alert&)>;

  /// The engine must outlive the session. Analysis runs inline (the
  /// session is single-threaded by design; run one session per worker for
  /// parallel deployments).
  LiveSession(NidsEngine& engine, AlertSink sink);

  /// Feed one captured Ethernet frame.
  void feed(util::ByteView frame, std::uint32_t ts_sec = 0, std::uint32_t ts_usec = 0);

  /// Flush flows that never closed (end of capture / shutdown).
  void finish();

  [[nodiscard]] const NidsStats& stats() const noexcept { return stats_; }

 private:
  void analyze_unit(util::ByteView payload, const Alert& meta);
  void dispatch(net::ParsedPacket& pkt);

  NidsEngine& engine_;
  AlertSink sink_;
  NidsStats stats_;

  struct FlowState {
    net::TcpReassembler reassembler;
    Alert meta;
    explicit FlowState(std::size_t cap) : reassembler(cap) {}
  };
  net::FlowMap<FlowState> flows_;
  net::Defragmenter defrag_;
};

}  // namespace senids::core
