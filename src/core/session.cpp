#include "core/session.hpp"

namespace senids::core {

LiveSession::LiveSession(NidsEngine& engine, AlertSink sink)
    : engine_(engine), sink_(std::move(sink)) {}

void LiveSession::analyze_unit(util::ByteView payload, const Alert& meta) {
  for (const Alert& alert : engine_.analyze_payload(payload, meta, &stats_)) {
    if (sink_) sink_(alert);
  }
}

void LiveSession::dispatch(net::ParsedPacket& pkt) {
  Alert meta;
  meta.ts_sec = pkt.ts_sec;
  meta.src = pkt.ip.src;
  meta.dst = pkt.ip.dst;
  meta.src_port = pkt.src_port();
  meta.dst_port = pkt.dst_port();

  if (pkt.transport == net::Transport::kTcp && engine_.options().reassemble_tcp) {
    auto [it, _] =
        flows_.try_emplace(net::FlowKey::of(pkt), engine_.options().max_stream_bytes);
    it->second.meta = meta;
    it->second.reassembler.feed(pkt.tcp.seq, pkt.tcp.flags, pkt.payload);
    if (it->second.reassembler.closed()) {
      if (!it->second.reassembler.stream().empty()) {
        analyze_unit(it->second.reassembler.stream(), it->second.meta);
      }
      flows_.erase(it);
    }
  } else if (!pkt.payload.empty()) {
    analyze_unit(pkt.payload, meta);
  }
}

void LiveSession::feed(util::ByteView frame, std::uint32_t ts_sec, std::uint32_t ts_usec) {
  ++stats_.packets;
  auto pkt = net::parse_frame(frame, ts_sec, ts_usec);
  if (!pkt) {
    ++stats_.non_ip;
    return;
  }
  const classify::Verdict verdict = engine_.classifier().observe(*pkt);

  if (pkt->transport == net::Transport::kFragment) {
    auto datagram = defrag_.feed(pkt->ip, pkt->payload);
    if (!datagram) return;
    auto whole =
        net::parse_reassembled(datagram->header, datagram->payload, ts_sec, ts_usec);
    if (!whole) return;
    if (engine_.classifier().check(*whole) != classify::Verdict::kAnalyze) return;
    ++stats_.suspicious_packets;
    dispatch(*whole);
    return;
  }

  if (verdict != classify::Verdict::kAnalyze) return;
  ++stats_.suspicious_packets;
  dispatch(*pkt);
}

void LiveSession::finish() {
  for (auto& [key, state] : flows_) {
    if (!state.reassembler.stream().empty()) {
      analyze_unit(state.reassembler.stream(), state.meta);
    }
  }
  flows_.clear();
}

}  // namespace senids::core
