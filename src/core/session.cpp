#include "core/session.hpp"

#include <chrono>
#include <optional>

#include "core/pipeline_obs.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace senids::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// Each session claims the next "session" attribution slot; sessions are
/// long-lived (one per capture worker), so indices stay small.
obs::WorkerSlot& claim_session_slot() {
  static std::atomic<std::size_t> next{0};
  return obs::WorkerTable::instance().slot("session",
                                           next.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

LiveSession::LiveSession(NidsEngine& engine, AlertSink sink)
    : engine_(engine),
      ctx_(engine.make_analysis_context()),
      worker_slot_(claim_session_slot()),
      sink_(std::move(sink)),
      dark_evictions_base_(engine.classifier().dark_space().evictions()),
      defrag_(engine.options().defrag_max_buffered_bytes) {
  flows_.set_metrics(&flow_table_metrics());
  defrag_.set_metrics(&defrag_metrics());
  obs::pipeline_metrics().flow_table_max_flows->set(
      static_cast<std::int64_t>(engine.options().max_flows));
  worker_slot_.begin_run();
}

LiveSession::~LiveSession() { worker_slot_.end_run(); }

void LiveSession::analyze_unit(util::ByteView payload, const Alert& meta,
                               std::uint64_t unit_id) {
  util::WallTimer unit_timer;
  for (const Alert& alert : engine_.analyze_payload(ctx_, payload, meta, &stats_, unit_id)) {
    ++alerts_emitted_;
    if (sink_) sink_(alert);
  }
  stats_.analysis_seconds += unit_timer.seconds();
}

bool LiveSession::stream_full(const FlowState& state) const {
  return state.reassembler.truncated() ||
         state.reassembler.stream().size() >= engine_.options().max_stream_bytes;
}

void LiveSession::flush_flow(FlowState& state) {
  obs::PipelineMetrics& pm = obs::pipeline_metrics();
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool tracing = obs::Tracer::enabled();
  const bool clocked = obs::metrics_enabled() || tracing;
  if (stream_full(state)) {
    ++stats_.streams_truncated;
    pm.streams_truncated->add();
  }
  double reassemble_seconds = state.reassemble_seconds;
  state.reassemble_seconds = 0.0;
  const SteadyClock::time_point t0 =
      clocked ? SteadyClock::now() : SteadyClock::time_point{};
  const util::Bytes stream = state.reassembler.take_stream();
  if (clocked) reassemble_seconds += seconds_since(t0);
  if (stream.empty()) return;
  const std::uint64_t unit_id = tracing ? tracer.next_unit_id() : 0;
  constexpr auto kReassemble = static_cast<std::size_t>(obs::Stage::kReassemble);
  pm.stage_seconds[kReassemble]->observe(reassemble_seconds);
  fold_stage(stats_.stages[kReassemble], reassemble_seconds);
  if (tracing) {
    const auto dur = static_cast<std::uint64_t>(reassemble_seconds * 1e6);
    const std::uint64_t now = tracer.now_us();
    tracer.record({obs::stage_name(obs::Stage::kReassemble).data(), unit_id,
                   now >= dur ? now - dur : 0, dur, stream.size(), 0});
  }
  analyze_unit(stream, state.meta, unit_id);
}

void LiveSession::dispatch(net::ParsedPacket& pkt) {
  const bool clocked = obs::metrics_enabled() || obs::Tracer::enabled();
  Alert meta;
  meta.ts_sec = pkt.ts_sec;
  meta.src = pkt.ip.src;
  meta.dst = pkt.ip.dst;
  meta.src_port = pkt.src_port();
  meta.dst_port = pkt.dst_port();

  const NidsOptions& options = engine_.options();
  if (pkt.transport == net::Transport::kTcp && options.reassemble_tcp) {
    auto flush_sink = [this](const net::FlowKey&, FlowState& state) { flush_flow(state); };
    if (options.flow_idle_timeout_sec) {
      stats_.flows_evicted_idle +=
          flows_.evict_idle(pkt.ts_sec, options.flow_idle_timeout_sec, flush_sink);
    }
    const net::FlowKey key = net::FlowKey::of(pkt);
    auto [state, created] = flows_.touch(key, pkt.ts_sec, options.max_stream_bytes);
    if (created) {
      // Pin alert metadata to the flow's first suspicious segment.
      state->meta = meta;
      if (options.max_flows && flows_.size() > options.max_flows &&
          flows_.evict_oldest(flush_sink)) {
        ++stats_.flows_evicted_overflow;
      }
    }
    const SteadyClock::time_point t0 =
        clocked ? SteadyClock::now() : SteadyClock::time_point{};
    state->reassembler.feed(pkt.tcp.seq, pkt.tcp.flags, pkt.payload);
    if (clocked) state->reassemble_seconds += seconds_since(t0);
    if (state->reassembler.closed() || stream_full(*state)) {
      flush_flow(*state);
      flows_.erase(key);
    }
  } else if (!pkt.payload.empty()) {
    const bool tracing = obs::Tracer::enabled();
    analyze_unit(pkt.payload, meta,
                 tracing ? obs::Tracer::instance().next_unit_id() : 0);
  }
}

void LiveSession::feed(util::ByteView frame, std::uint32_t ts_sec, std::uint32_t ts_usec) {
  obs::PipelineMetrics& pm = obs::pipeline_metrics();
  obs::Tracer& tracer = obs::Tracer::instance();
  const bool tracing = obs::Tracer::enabled();
  const bool clocked = obs::metrics_enabled() || tracing;
  // Attribution: the gap since the previous feed returned is the caller
  // thread waiting for traffic (idle); the body of feed() is busy.
  const std::uint64_t feed_start_ns = obs::WorkerTable::instance().now_ns();
  if (last_feed_end_ns_ != 0 && feed_start_ns > last_feed_end_ns_) {
    worker_slot_.add_idle(static_cast<double>(feed_start_ns - last_feed_end_ns_) * 1e-9);
  }
  worker_slot_.heartbeat();
  const std::size_t units_before = stats_.units_analyzed;
  ++stats_.packets;
  pm.packets->add();
  const SteadyClock::time_point pkt_start =
      clocked ? SteadyClock::now() : SteadyClock::time_point{};

  // Parse + classifier verdict (+ defragmentation); mirrors the batch
  // engine's stage-(a) loop so live and offline runs report identically.
  auto classify_one = [&]() -> std::optional<net::ParsedPacket> {
    auto pkt = net::parse_frame(frame, ts_sec, ts_usec);
    if (!pkt) {
      ++stats_.non_ip;
      return std::nullopt;
    }
    const classify::Verdict verdict = engine_.classifier().observe(*pkt);

    if (pkt->transport == net::Transport::kFragment) {
      auto datagram = defrag_.feed(pkt->ip, pkt->payload);
      // The defragmenter lives for the whole session; its cumulative drop
      // count is this session's.
      stats_.defrag_dropped = defrag_.dropped();
      if (!datagram) return std::nullopt;
      auto whole =
          net::parse_reassembled(datagram->header, datagram->payload, ts_sec, ts_usec);
      if (!whole) return std::nullopt;
      if (engine_.classifier().check(*whole) != classify::Verdict::kAnalyze) {
        return std::nullopt;
      }
      return whole;
    }

    if (verdict != classify::Verdict::kAnalyze) return std::nullopt;
    return pkt;
  };
  auto suspicious = classify_one();
  stats_.dark_sources_evicted =
      engine_.classifier().dark_space().evictions() - dark_evictions_base_;
  const double classify_seconds = clocked ? seconds_since(pkt_start) : 0.0;
  constexpr auto kClassify = static_cast<std::size_t>(obs::Stage::kClassify);
  pm.stage_seconds[kClassify]->observe(classify_seconds);
  fold_stage(stats_.stages[kClassify], classify_seconds);
  if (tracing && suspicious) {
    const auto dur = static_cast<std::uint64_t>(classify_seconds * 1e6);
    const std::uint64_t now = tracer.now_us();
    tracer.record({obs::stage_name(obs::Stage::kClassify).data(), 0,
                   now >= dur ? now - dur : 0, dur, frame.size(), 0});
  }
  const double analysis_before = stats_.analysis_seconds;
  if (suspicious) {
    ++stats_.suspicious_packets;
    pm.suspicious_packets->add();
    dispatch(*suspicious);
  }
  // Whole-feed caller wall minus the inline analysis it triggered: the
  // same stage-(a) definition the batch engine reports.
  if (clocked) {
    stats_.classify_seconds +=
        seconds_since(pkt_start) - (stats_.analysis_seconds - analysis_before);
  }
  last_feed_end_ns_ = obs::WorkerTable::instance().now_ns();
  if (last_feed_end_ns_ > feed_start_ns) {
    worker_slot_.add_busy(static_cast<double>(last_feed_end_ns_ - feed_start_ns) * 1e-9);
  }
  if (stats_.units_analyzed > units_before) {
    worker_slot_.add_units(stats_.units_analyzed - units_before);
  }
  maybe_log_metrics(ts_sec);
}

void LiveSession::maybe_log_metrics(std::uint32_t ts_sec) {
  const std::uint32_t interval = engine_.options().metrics_log_interval_sec;
  if (interval == 0 || ts_sec == 0) return;
  if (next_metrics_log_ts_ == 0) {
    next_metrics_log_ts_ = ts_sec + interval;
    return;
  }
  if (ts_sec < next_metrics_log_ts_) return;
  next_metrics_log_ts_ = ts_sec + interval;
  util::log_info() << "session metrics: packets=" << stats_.packets
                   << " suspicious=" << stats_.suspicious_packets
                   << " units=" << stats_.units_analyzed
                   << " frames=" << stats_.frames_extracted
                   << " alerts=" << alerts_emitted_ << " flows=" << flows_.size()
                   << " truncated=" << stats_.streams_truncated
                   << " cache_hits=" << stats_.cache_hits
                   << " cache_misses=" << stats_.cache_misses
                   << " classify_s=" << stats_.classify_seconds
                   << " analysis_s=" << stats_.analysis_seconds;
}

void LiveSession::finish() {
  util::WallTimer drain_timer;
  worker_slot_.heartbeat();
  flows_.drain([this](const net::FlowKey&, FlowState& state) { flush_flow(state); });
  worker_slot_.add_busy(drain_timer.seconds());
  last_feed_end_ns_ = obs::WorkerTable::instance().now_ns();
}

}  // namespace senids::core
