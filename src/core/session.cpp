#include "core/session.hpp"

namespace senids::core {

LiveSession::LiveSession(NidsEngine& engine, AlertSink sink)
    : engine_(engine), sink_(std::move(sink)) {}

void LiveSession::analyze_unit(util::ByteView payload, const Alert& meta) {
  for (const Alert& alert : engine_.analyze_payload(payload, meta, &stats_)) {
    if (sink_) sink_(alert);
  }
}

bool LiveSession::stream_full(const FlowState& state) const {
  return state.reassembler.truncated() ||
         state.reassembler.stream().size() >= engine_.options().max_stream_bytes;
}

void LiveSession::flush_flow(FlowState& state) {
  if (stream_full(state)) ++stats_.streams_truncated;
  const util::Bytes stream = state.reassembler.take_stream();
  if (!stream.empty()) analyze_unit(stream, state.meta);
}

void LiveSession::dispatch(net::ParsedPacket& pkt) {
  Alert meta;
  meta.ts_sec = pkt.ts_sec;
  meta.src = pkt.ip.src;
  meta.dst = pkt.ip.dst;
  meta.src_port = pkt.src_port();
  meta.dst_port = pkt.dst_port();

  const NidsOptions& options = engine_.options();
  if (pkt.transport == net::Transport::kTcp && options.reassemble_tcp) {
    auto flush_sink = [this](const net::FlowKey&, FlowState& state) { flush_flow(state); };
    if (options.flow_idle_timeout_sec) {
      stats_.flows_evicted_idle +=
          flows_.evict_idle(pkt.ts_sec, options.flow_idle_timeout_sec, flush_sink);
    }
    const net::FlowKey key = net::FlowKey::of(pkt);
    auto [state, created] = flows_.touch(key, pkt.ts_sec, options.max_stream_bytes);
    if (created) {
      // Pin alert metadata to the flow's first suspicious segment.
      state->meta = meta;
      if (options.max_flows && flows_.size() > options.max_flows &&
          flows_.evict_oldest(flush_sink)) {
        ++stats_.flows_evicted_overflow;
      }
    }
    state->reassembler.feed(pkt.tcp.seq, pkt.tcp.flags, pkt.payload);
    if (state->reassembler.closed() || stream_full(*state)) {
      flush_flow(*state);
      flows_.erase(key);
    }
  } else if (!pkt.payload.empty()) {
    analyze_unit(pkt.payload, meta);
  }
}

void LiveSession::feed(util::ByteView frame, std::uint32_t ts_sec, std::uint32_t ts_usec) {
  ++stats_.packets;
  auto pkt = net::parse_frame(frame, ts_sec, ts_usec);
  if (!pkt) {
    ++stats_.non_ip;
    return;
  }
  const classify::Verdict verdict = engine_.classifier().observe(*pkt);

  if (pkt->transport == net::Transport::kFragment) {
    auto datagram = defrag_.feed(pkt->ip, pkt->payload);
    if (!datagram) return;
    auto whole =
        net::parse_reassembled(datagram->header, datagram->payload, ts_sec, ts_usec);
    if (!whole) return;
    if (engine_.classifier().check(*whole) != classify::Verdict::kAnalyze) return;
    ++stats_.suspicious_packets;
    dispatch(*whole);
    return;
  }

  if (verdict != classify::Verdict::kAnalyze) return;
  ++stats_.suspicious_packets;
  dispatch(*pkt);
}

void LiveSession::finish() {
  flows_.drain([this](const net::FlowKey&, FlowState& state) { flush_flow(state); });
}

}  // namespace senids::core
