#include "core/shard.hpp"

#include <chrono>
#include <utility>

#include "core/pipeline_obs.hpp"
#include "obs/trace.hpp"

namespace senids::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace

PipelineShard::PipelineShard(std::size_t index, const NidsOptions& options,
                             classify::TrafficClassifier& classifier, bool own_state)
    : index_(index),
      options_(options),
      classifier_(classifier),
      defrag_(options.defrag_max_buffered_bytes) {
  if (own_state) {
    state_ = classifier_.make_state();
    // Multi-shard runs get labelled shard="<i>" series; the flow gauge is
    // per shard, the created/evicted counters stay process-wide families.
    shard_ = obs::shard_metrics(index_);
    obs::PipelineMetrics& pm = obs::pipeline_metrics();
    flow_metrics_ = net::FlowTableMetrics{shard_.flows, pm.flows_created,
                                          pm.flows_evicted_idle, pm.flows_evicted_overflow};
  }
}

classify::Verdict PipelineShard::observe(const net::ParsedPacket& pkt) {
  return state_ ? classifier_.observe_in(*state_, pkt) : classifier_.observe(pkt);
}

classify::Verdict PipelineShard::check(const net::ParsedPacket& pkt) const {
  return state_ ? classifier_.check_in(*state_, pkt) : classifier_.check(pkt);
}

std::size_t PipelineShard::dark_evictions() const {
  return state_ ? state_->dark_counts.evictions() : classifier_.dark_space().evictions();
}

bool PipelineShard::is_tainted(net::Ipv4Addr src) const {
  return state_ ? state_->tainted.contains(src.value) : classifier_.is_tainted(src);
}

void PipelineShard::begin_capture() {
  flows_ = net::BoundedFlowTable<FlowState>{};
  flows_.set_metrics(state_ ? &flow_metrics_ : &flow_table_metrics());
  defrag_ = net::Defragmenter(options_.defrag_max_buffered_bytes);
  defrag_.set_metrics(&defrag_metrics());
  stats_ = NidsStats{};
  dark_evictions_base_ = dark_evictions();
  tracing_ = obs::Tracer::enabled();
  clocked_ = obs::metrics_enabled() || tracing_;
}

void PipelineShard::record_stage(obs::Stage stage, double seconds, std::uint64_t unit_id,
                                 std::uint64_t bytes, bool with_span) {
  const auto idx = static_cast<std::size_t>(stage);
  obs::pipeline_metrics().stage_seconds[idx]->observe(seconds);
  fold_stage(stats_.stages[idx], seconds);
  if (tracing_ && with_span) {
    obs::Tracer& tracer = obs::Tracer::instance();
    const auto dur = static_cast<std::uint64_t>(seconds * 1e6);
    const std::uint64_t now = tracer.now_us();
    tracer.record({obs::stage_name(stage).data(), unit_id, now >= dur ? now - dur : 0,
                   dur, bytes, 0});
  }
}

bool PipelineShard::stream_full(const FlowState& state) const {
  return state.reassembler.truncated() ||
         state.reassembler.stream().size() >= options_.max_stream_bytes;
}

void PipelineShard::flush_flow(FlowState& state, const UnitSink& sink) {
  if (stream_full(state)) {
    ++stats_.streams_truncated;
    obs::pipeline_metrics().streams_truncated->add();
  }
  double reassemble_seconds = state.reassemble_seconds;
  state.reassemble_seconds = 0.0;
  const SteadyClock::time_point t0 =
      clocked_ ? SteadyClock::now() : SteadyClock::time_point{};
  util::Bytes stream = state.reassembler.take_stream();
  if (clocked_) reassemble_seconds += seconds_since(t0);
  if (stream.empty()) return;
  const std::uint64_t unit_id = tracing_ ? obs::Tracer::instance().next_unit_id() : 0;
  record_stage(obs::Stage::kReassemble, reassemble_seconds, unit_id, stream.size(), true);
  if (shard_.units) shard_.units->add();
  sink(std::move(stream), state.meta, unit_id);
}

void PipelineShard::dispatch(net::ParsedPacket& pkt, const UnitSink& sink) {
  Alert meta;
  meta.ts_sec = pkt.ts_sec;
  meta.src = pkt.ip.src;
  meta.dst = pkt.ip.dst;
  meta.src_port = pkt.src_port();
  meta.dst_port = pkt.dst_port();

  if (pkt.transport == net::Transport::kTcp && options_.reassemble_tcp) {
    auto flush_sink = [this, &sink](const net::FlowKey&, FlowState& state) {
      flush_flow(state, sink);
    };
    if (options_.flow_idle_timeout_sec) {
      stats_.flows_evicted_idle +=
          flows_.evict_idle(pkt.ts_sec, options_.flow_idle_timeout_sec, flush_sink);
    }
    const net::FlowKey key = net::FlowKey::of(pkt);
    auto [state, created] = flows_.touch(key, pkt.ts_sec, options_.max_stream_bytes);
    if (created) {
      // The flow's alert metadata is pinned to its *first* suspicious
      // segment (timestamp of first contact, not of the last segment).
      state->meta = meta;
      if (options_.max_flows && flows_.size() > options_.max_flows &&
          flows_.evict_oldest(flush_sink)) {
        ++stats_.flows_evicted_overflow;
      }
    }
    const SteadyClock::time_point t0 =
        clocked_ ? SteadyClock::now() : SteadyClock::time_point{};
    state->reassembler.feed(pkt.tcp.seq, pkt.tcp.flags, pkt.payload);
    if (clocked_) state->reassemble_seconds += seconds_since(t0);
    if (state->reassembler.closed() || stream_full(*state)) {
      flush_flow(*state, sink);
      flows_.erase(key);
    }
  } else if (!pkt.payload.empty()) {
    if (shard_.units) shard_.units->add();
    sink(std::move(pkt.payload), meta,
         tracing_ ? obs::Tracer::instance().next_unit_id() : 0);
  }
}

std::optional<net::ParsedPacket> PipelineShard::classify_one(const pcap::Record& rec) {
  auto pkt = net::parse_frame(rec.data, rec.ts_sec, rec.ts_usec);
  if (!pkt) {
    ++stats_.non_ip;
    return std::nullopt;
  }
  const classify::Verdict verdict = observe(*pkt);

  if (pkt->transport == net::Transport::kFragment) {
    // Reassemble regardless of verdict: a tainted source's datagram may
    // complete with fragments that arrived before the taint.
    auto datagram = defrag_.feed(pkt->ip, pkt->payload);
    if (!datagram) return std::nullopt;
    auto whole = net::parse_reassembled(datagram->header, datagram->payload, pkt->ts_sec,
                                        pkt->ts_usec);
    if (!whole) return std::nullopt;
    if (check(*whole) != classify::Verdict::kAnalyze) return std::nullopt;
    return whole;
  }

  if (verdict != classify::Verdict::kAnalyze) return std::nullopt;
  return pkt;
}

void PipelineShard::process_record(const pcap::Record& rec, const UnitSink& sink) {
  obs::PipelineMetrics& pm = obs::pipeline_metrics();
  ++stats_.packets;
  pm.packets->add();
  if (shard_.packets) shard_.packets->add();
  const SteadyClock::time_point pkt_start =
      clocked_ ? SteadyClock::now() : SteadyClock::time_point{};
  auto suspicious = classify_one(rec);
  // Per-packet classify latency; spans only for suspicious packets (a
  // span per ignored packet would swamp the trace with noise).
  record_stage(obs::Stage::kClassify, clocked_ ? seconds_since(pkt_start) : 0.0, 0,
               rec.data.size(), suspicious.has_value());
  if (suspicious) {
    ++stats_.suspicious_packets;
    pm.suspicious_packets->add();
    dispatch(*suspicious, sink);
  }
}

void PipelineShard::finish_capture(const UnitSink& sink) {
  // Flush flows that never closed (truncated captures), oldest first.
  flows_.drain(
      [this, &sink](const net::FlowKey&, FlowState& state) { flush_flow(state, sink); });
  // The defragmenter is fresh each capture, so its drop count is this
  // capture's; dark-space evictions persist, so delta from begin_capture.
  stats_.defrag_dropped += defrag_.dropped();
  stats_.dark_sources_evicted += dark_evictions() - dark_evictions_base_;
}

}  // namespace senids::core
