// Umbrella header: the public API of the semantics-aware NIDS library.
// Downstream users normally need only this include.
//
//   #include "core/senids.hpp"
//
//   senids::core::NidsOptions opts;
//   senids::core::NidsEngine nids(opts);
//   nids.classifier().honeypots().add_decoy(
//       *senids::net::Ipv4Addr::parse("10.0.0.7"));
//   auto report = nids.process_capture(capture);
//   for (const auto& alert : report.alerts) std::puts(alert.str().c_str());
#pragma once

#include "classify/classifier.hpp"    // IWYU pragma: export
#include "core/alert.hpp"             // IWYU pragma: export
#include "core/engine.hpp"             // IWYU pragma: export
#include "core/session.hpp"            // IWYU pragma: export
#include "extract/extractor.hpp"      // IWYU pragma: export
#include "net/forge.hpp"              // IWYU pragma: export
#include "net/packet.hpp"             // IWYU pragma: export
#include "pcap/pcap.hpp"              // IWYU pragma: export
#include "semantic/analyzer.hpp"      // IWYU pragma: export
#include "semantic/dsl.hpp"           // IWYU pragma: export
#include "semantic/library.hpp"       // IWYU pragma: export
#include "triage/triage.hpp"          // IWYU pragma: export
#include "arch/decoder.hpp"            // IWYU pragma: export
#include "arch/format.hpp"             // IWYU pragma: export
#include "arch/scan.hpp"               // IWYU pragma: export
