// One source-affine stage-(a) pipeline shard. The engine decomposes
// classification / defragmentation / TCP reassembly into N shards, each
// owning the classifier scan-counting state, Defragmenter, and bounded
// flow table for the sources routed to it. Source affinity is the
// load-bearing design point: per-source dark-space probe counting and
// 5-tuple flow keys (which include the source) both stay correct inside
// a single shard, so the packet hot path needs no cross-shard
// synchronization — shards share only read-only classifier
// configuration, the process-wide metric registry, and the internally
// synchronized verdict cache downstream.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/engine.hpp"
#include "net/defrag.hpp"
#include "net/flow.hpp"
#include "net/reassembly.hpp"
#include "obs/pipeline.hpp"
#include "pcap/pcap.hpp"

namespace senids::core {

/// Shard a source address over `shards` buckets (multiplicative hash;
/// well mixed even for adjacent addresses). All frames from one source
/// land in one shard — the invariant everything above relies on.
[[nodiscard]] inline std::size_t shard_index_for(net::Ipv4Addr src,
                                                 std::size_t shards) noexcept {
  return static_cast<std::size_t>((src.value * 0x9e3779b97f4a7c15ULL) >> 32) % shards;
}

class PipelineShard {
 public:
  /// Receives each analysis unit the shard forms (suspicious payload or
  /// flushed stream). The engine points this at the worker handoff queue
  /// or at inline analysis.
  using UnitSink =
      std::function<void(util::Bytes payload, const Alert& meta, std::uint64_t unit_id)>;

  /// `options` and `classifier` must outlive the shard. With `own_state`
  /// the shard classifies against a private ClassifierState (the
  /// multi-shard engine); without it, verdicts go through the
  /// classifier's embedded state so single-shard runs keep the classic
  /// `classifier().is_tainted()` surface observable.
  PipelineShard(std::size_t index, const NidsOptions& options,
                classify::TrafficClassifier& classifier, bool own_state);

  /// Reset per-capture state (flow table, defragmenter, stats). Taint and
  /// dark-space counts persist across captures, mirroring the classifier.
  void begin_capture();
  /// Classify one captured record and dispatch any unit it completes.
  void process_record(const pcap::Record& rec, const UnitSink& sink);
  /// Flush flows that never closed and finalize per-capture counters.
  void finish_capture(const UnitSink& sink);

  /// Per-capture stats for this shard; the engine folds them with
  /// merge_stats. The engine also writes classify_seconds here.
  [[nodiscard]] NidsStats& stats() noexcept { return stats_; }
  [[nodiscard]] bool is_tainted(net::Ipv4Addr src) const;
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

 private:
  struct FlowState {
    net::TcpReassembler reassembler;
    Alert meta;
    double reassemble_seconds = 0.0;  // accrued per feed, emitted at flush
    explicit FlowState(std::size_t cap) : reassembler(cap, cap) {}
  };

  classify::Verdict observe(const net::ParsedPacket& pkt);
  [[nodiscard]] classify::Verdict check(const net::ParsedPacket& pkt) const;
  [[nodiscard]] std::size_t dark_evictions() const;

  std::optional<net::ParsedPacket> classify_one(const pcap::Record& rec);
  void dispatch(net::ParsedPacket& pkt, const UnitSink& sink);
  [[nodiscard]] bool stream_full(const FlowState& state) const;
  void flush_flow(FlowState& state, const UnitSink& sink);
  /// Fold a producer-side stage execution into stats + registry (+ a
  /// trace span placed backwards from "now", since the span just ended).
  void record_stage(obs::Stage stage, double seconds, std::uint64_t unit_id,
                    std::uint64_t bytes, bool with_span);

  std::size_t index_;
  const NidsOptions& options_;
  classify::TrafficClassifier& classifier_;
  std::optional<classify::ClassifierState> state_;  // engaged iff own_state

  net::FlowTableMetrics flow_metrics_{};  // per-shard binding (own_state only)
  obs::ShardMetrics shard_{};             // null handles when single-shard
  net::BoundedFlowTable<FlowState> flows_;
  net::Defragmenter defrag_;
  NidsStats stats_;
  std::size_t dark_evictions_base_ = 0;
  bool tracing_ = false;
  bool clocked_ = false;
};

}  // namespace senids::core
