// Internal glue between the core pipeline containers and the
// process-wide observability handles. BoundedQueue and BoundedFlowTable
// deliberately take nullable metric-handle structs (util/ and net/ know
// nothing about which registry families exist); these helpers bind them
// to the families in obs::pipeline_metrics() exactly once, and every
// engine / live session shares the same bound structs.
#pragma once

#include "cache/verdict_cache.hpp"
#include "core/engine.hpp"
#include "net/defrag.hpp"
#include "net/flow.hpp"
#include "obs/pipeline.hpp"
#include "util/queue.hpp"

namespace senids::core {

inline const util::QueueMetrics& queue_metrics() {
  obs::PipelineMetrics& pm = obs::pipeline_metrics();
  static const util::QueueMetrics m{pm.queue_depth,        pm.queue_depth_peak,
                                    pm.queue_bytes,        pm.queue_pushed,
                                    pm.queue_backpressure_waits,
                                    pm.queue_backpressure_wait_seconds};
  return m;
}

inline const net::FlowTableMetrics& flow_table_metrics() {
  obs::PipelineMetrics& pm = obs::pipeline_metrics();
  static const net::FlowTableMetrics m{pm.flow_table_flows, pm.flows_created,
                                       pm.flows_evicted_idle, pm.flows_evicted_overflow};
  return m;
}

inline const net::DefragMetrics& defrag_metrics() {
  obs::PipelineMetrics& pm = obs::pipeline_metrics();
  static const net::DefragMetrics m{pm.defrag_dropped};
  return m;
}

inline const cache::CacheMetrics& cache_metrics() {
  obs::PipelineMetrics& pm = obs::pipeline_metrics();
  static const cache::CacheMetrics m{pm.cache_hits,      pm.cache_misses,
                                     pm.cache_insertions, pm.cache_evictions,
                                     pm.cache_entries,    pm.cache_bytes};
  return m;
}

/// Fold one stage execution into a per-capture StageStat accumulator.
inline void fold_stage(StageStat& s, double seconds) noexcept {
  ++s.count;
  s.seconds += seconds;
  if (seconds > s.max_seconds) s.max_seconds = seconds;
}

}  // namespace senids::core
