#include "semantic/dsl.hpp"

#include <cctype>

#include "arch/arch.hpp"
#include <functional>
#include <optional>

namespace senids::semantic {

namespace {

struct Token {
  enum class Kind {
    kIdent, kNumber, kString, kStar,
    kLParen, kRParen, kLBrace, kRBrace,
    kComma, kSemi, kColon, kEquals, kEnd
  };
  Kind kind{};
  std::string text;
  std::uint32_t number = 0;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) {
      t.kind = Token::Kind::kEnd;
      return t;
    }
    const char c = text_[pos_];
    switch (c) {
      case '(': ++pos_; t.kind = Token::Kind::kLParen; return t;
      case ')': ++pos_; t.kind = Token::Kind::kRParen; return t;
      case '{': ++pos_; t.kind = Token::Kind::kLBrace; return t;
      case '}': ++pos_; t.kind = Token::Kind::kRBrace; return t;
      case ',': ++pos_; t.kind = Token::Kind::kComma; return t;
      case ';': ++pos_; t.kind = Token::Kind::kSemi; return t;
      case ':': ++pos_; t.kind = Token::Kind::kColon; return t;
      case '=': ++pos_; t.kind = Token::Kind::kEquals; return t;
      case '*': ++pos_; t.kind = Token::Kind::kStar; return t;
      case '"': {
        ++pos_;
        t.kind = Token::Kind::kString;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          t.text.push_back(text_[pos_++]);
        }
        if (pos_ < text_.size()) ++pos_;  // closing quote
        return t;
      }
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      t.kind = Token::Kind::kNumber;
      std::size_t start = pos_;
      int base = 10;
      if (c == '0' && pos_ + 1 < text_.size() &&
          (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
        base = 16;
        pos_ += 2;
        start = pos_;
      }
      std::uint64_t v = 0;
      while (pos_ < text_.size() &&
             std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        const char d = text_[pos_];
        const int dv = d <= '9' ? d - '0' : (std::tolower(d) - 'a' + 10);
        if (base == 10 && dv >= 10) break;
        v = v * static_cast<unsigned>(base) + static_cast<unsigned>(dv);
        ++pos_;
      }
      t.text = std::string(text_.substr(start, pos_ - start));
      t.number = static_cast<std::uint32_t>(v);
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '-') {
      t.kind = Token::Kind::kIdent;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '-')) {
        t.text.push_back(text_[pos_++]);
      }
      return t;
    }
    // Unknown character: return it as an ident so the parser reports it.
    t.kind = Token::Kind::kIdent;
    t.text.push_back(c);
    ++pos_;
    return t;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  std::variant<std::vector<Template>, ParseError> parse() {
    std::vector<Template> out;
    while (cur_.kind != Token::Kind::kEnd) {
      auto t = parse_template();
      if (!t) return error_;
      out.push_back(std::move(*t));
    }
    return out;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  bool fail(std::string message) {
    error_ = ParseError{cur_.line, std::move(message)};
    return false;
  }

  bool expect(Token::Kind kind, const char* what) {
    if (cur_.kind != kind) return fail(std::string("expected ") + what);
    advance();
    return true;
  }

  static std::optional<ir::BinOp> binop_by_name(std::string_view s) {
    using ir::BinOp;
    if (s == "add") return BinOp::kAdd;
    if (s == "sub") return BinOp::kSub;
    if (s == "xor") return BinOp::kXor;
    if (s == "or") return BinOp::kOr;
    if (s == "and") return BinOp::kAnd;
    if (s == "shl") return BinOp::kShl;
    if (s == "shr") return BinOp::kShr;
    if (s == "sar") return BinOp::kSar;
    if (s == "rol") return BinOp::kRol;
    if (s == "ror") return BinOp::kRor;
    if (s == "mul") return BinOp::kMul;
    return std::nullopt;
  }

  static std::optional<ThreatClass> threat_by_name(std::string_view s) {
    if (s == "decryption-loop") return ThreatClass::kDecryptionLoop;
    if (s == "shell-spawn") return ThreatClass::kShellSpawn;
    if (s == "port-bind-shell") return ThreatClass::kPortBindShell;
    if (s == "reverse-shell") return ThreatClass::kReverseShell;
    if (s == "code-red-ii") return ThreatClass::kCodeRedII;
    if (s == "custom") return ThreatClass::kCustom;
    return std::nullopt;
  }

  /// Pattern := '*' [Ident] | UpperIdent | Number | load(p) | not(p) |
  ///            neg(p) | <binop>(p, p) | transform(p ; op[, op...])
  PatPtr parse_pattern() {
    if (cur_.kind == Token::Kind::kStar) {
      advance();
      std::string var;
      if (cur_.kind == Token::Kind::kIdent && is_var_name(cur_.text)) {
        var = cur_.text;
        advance();
      }
      return p_any(std::move(var));
    }
    if (cur_.kind == Token::Kind::kNumber) {
      auto p = p_fixed(cur_.number);
      advance();
      return p;
    }
    if (cur_.kind != Token::Kind::kIdent) {
      fail("expected pattern");
      return nullptr;
    }
    const std::string name = cur_.text;
    advance();

    if (name == "load") {
      if (!expect(Token::Kind::kLParen, "'('")) return nullptr;
      PatPtr addr = parse_pattern();
      if (!addr) return nullptr;
      if (!expect(Token::Kind::kRParen, "')'")) return nullptr;
      return p_load(std::move(addr));
    }
    if (name == "not" || name == "neg") {
      if (!expect(Token::Kind::kLParen, "'('")) return nullptr;
      PatPtr sub = parse_pattern();
      if (!sub) return nullptr;
      if (!expect(Token::Kind::kRParen, "')'")) return nullptr;
      return p_un(name == "not" ? ir::UnOp::kNot : ir::UnOp::kNeg, std::move(sub));
    }
    if (name == "transform") {
      if (!expect(Token::Kind::kLParen, "'('")) return nullptr;
      PatPtr base = parse_pattern();
      if (!base) return nullptr;
      if (!expect(Token::Kind::kSemi, "';'")) return nullptr;
      std::vector<ir::BinOp> allowed;
      bool allow_not = false;
      for (;;) {
        if (cur_.kind != Token::Kind::kIdent) {
          fail("expected operator name in transform list");
          return nullptr;
        }
        if (cur_.text == "not") {
          allow_not = true;
        } else if (auto op = binop_by_name(cur_.text)) {
          allowed.push_back(*op);
        } else {
          fail("unknown operator '" + cur_.text + "' in transform list");
          return nullptr;
        }
        advance();
        if (cur_.kind != Token::Kind::kComma) break;
        advance();
      }
      if (!expect(Token::Kind::kRParen, "')'")) return nullptr;
      return p_transform(std::move(base), std::move(allowed), allow_not);
    }
    if (auto op = binop_by_name(name)) {
      if (!expect(Token::Kind::kLParen, "'('")) return nullptr;
      PatPtr a = parse_pattern();
      if (!a) return nullptr;
      if (!expect(Token::Kind::kComma, "','")) return nullptr;
      PatPtr b = parse_pattern();
      if (!b) return nullptr;
      if (!expect(Token::Kind::kRParen, "')'")) return nullptr;
      return p_bin(*op, std::move(a), std::move(b));
    }
    if (is_var_name(name)) {
      return p_const(name);  // bare uppercase identifier: symbolic constant
    }
    fail("unknown pattern '" + name + "'");
    return nullptr;
  }

  static bool is_var_name(std::string_view s) {
    return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
  }

  bool parse_stmt(Template& t) {
    if (cur_.kind != Token::Kind::kIdent) return fail("expected statement");
    const std::string kw = cur_.text;
    const std::size_t kw_line = cur_.line;
    advance();

    if (kw == "store" || kw == "decode") {
      // store [byte|word|dword] ADDR = VALUE
      // decode ADDR = VALUE   (byte-wide, invertibility-checked store:
      //                        the hardened decoder-loop form)
      std::uint8_t width = kw == "decode" ? 8 : 0;
      if (kw == "store" && cur_.kind == Token::Kind::kIdent) {
        if (cur_.text == "byte") {
          width = 8;
          advance();
        } else if (cur_.text == "word") {
          width = 16;
          advance();
        } else if (cur_.text == "dword") {
          width = 32;
          advance();
        } else if (cur_.text == "qword") {
          width = 64;
          advance();
        }
      }
      PatPtr addr = parse_pattern();
      if (!addr) return false;
      if (!expect(Token::Kind::kEquals, "'='")) return false;
      PatPtr value = parse_pattern();
      if (!value) return false;
      if (kw == "decode") {
        t.stmts.push_back(st_decode_store(std::move(addr), std::move(value)));
      } else {
        t.stmts.push_back(st_mem_write(std::move(addr), std::move(value), width));
      }
      return true;
    }
    if (kw == "regwrite") {
      PatPtr value = parse_pattern();
      if (!value) return false;
      t.stmts.push_back(st_reg_write(std::move(value)));
      return true;
    }
    if (kw == "advance") {
      if (cur_.kind != Token::Kind::kIdent || !is_var_name(cur_.text)) {
        return fail("advance expects a variable name");
      }
      t.stmts.push_back(st_advance(cur_.text));
      advance();
      return true;
    }
    if (kw == "loopback") {
      t.stmts.push_back(st_branch_back());
      return true;
    }
    if (kw == "syscall" || kw == "syscall64") {
      if (cur_.kind != Token::Kind::kNumber) return fail("syscall expects a number");
      // The template matches the low byte of eax/ebx, so a number above
      // 0xff would silently truncate (0x166 matching as 0x66) — reject it.
      if (cur_.number > 0xff) return fail("syscall number must fit in one byte");
      Stmt s = kw == "syscall64" ? st_syscall64(static_cast<std::uint8_t>(cur_.number))
                                 : st_syscall(static_cast<std::uint8_t>(cur_.number));
      advance();
      while (cur_.kind == Token::Kind::kIdent &&
             (cur_.text == "sub" || cur_.text == "path")) {
        const std::string mod = cur_.text;
        advance();
        if (mod == "sub") {
          if (cur_.kind != Token::Kind::kNumber) return fail("sub expects a number");
          if (cur_.number > 0xff) return fail("sub number must fit in one byte");
          s.ebx_low = static_cast<std::uint8_t>(cur_.number);
          advance();
        } else {
          if (cur_.kind != Token::Kind::kString) return fail("path expects a string");
          s.ebx_points_to = cur_.text;
          advance();
        }
      }
      t.stmts.push_back(std::move(s));
      return true;
    }
    error_ = ParseError{kw_line, "unknown statement '" + kw + "'"};
    return false;
  }

  std::optional<Template> parse_template() {
    if (cur_.kind != Token::Kind::kIdent || cur_.text != "template") {
      fail("expected 'template'");
      return std::nullopt;
    }
    advance();
    if (cur_.kind != Token::Kind::kIdent) {
      fail("expected template name");
      return std::nullopt;
    }
    Template t;
    t.name = cur_.text;
    advance();
    if (cur_.kind == Token::Kind::kColon) {
      advance();
      if (cur_.kind != Token::Kind::kIdent) {
        fail("expected threat class after ':'");
        return std::nullopt;
      }
      auto cls = threat_by_name(cur_.text);
      if (!cls) {
        fail("unknown threat class '" + cur_.text + "'");
        return std::nullopt;
      }
      t.threat = *cls;
      advance();
    }
    // Optional architecture tag: `arch: x86_64` (default x86_32).
    if (cur_.kind == Token::Kind::kIdent && cur_.text == "arch") {
      advance();
      if (!expect(Token::Kind::kColon, "':' after 'arch'")) return std::nullopt;
      if (cur_.kind != Token::Kind::kIdent) {
        fail("expected architecture name after 'arch:'");
        return std::nullopt;
      }
      if (arch::Arch::by_name(cur_.text) == nullptr) {
        fail("unknown architecture '" + cur_.text + "'");
        return std::nullopt;
      }
      t.arch = cur_.text;
      advance();
    }
    if (!expect(Token::Kind::kLBrace, "'{'")) return std::nullopt;
    while (cur_.kind != Token::Kind::kRBrace) {
      if (cur_.kind == Token::Kind::kEnd) {
        fail("unexpected end of input inside template body");
        return std::nullopt;
      }
      if (!parse_stmt(t)) return std::nullopt;
    }
    advance();  // '}'
    if (t.stmts.empty()) {
      fail("template '" + t.name + "' has no statements");
      return std::nullopt;
    }
    // Semantic validation: every `advance X` must refer to a variable
    // bound by an earlier statement's pattern, or it can never match.
    std::vector<std::string> bound;
    std::function<void(const PatPtr&)> collect = [&](const PatPtr& p) {
      if (!p) return;
      if (!p->var.empty()) bound.push_back(p->var);
      collect(p->a);
      collect(p->b);
      collect(p->base);
    };
    for (const Stmt& st : t.stmts) {
      if (st.kind == Stmt::Kind::kAdvance) {
        bool found = false;
        for (const auto& name : bound) {
          if (name == st.ref_var) found = true;
        }
        if (!found) {
          fail("advance refers to '" + st.ref_var +
               "', which no earlier statement binds");
          return std::nullopt;
        }
      }
      collect(st.addr);
      collect(st.value);
    }
    return t;
  }

  Lexer lexer_;
  Token cur_;
  ParseError error_;
};

}  // namespace

std::variant<std::vector<Template>, ParseError> parse_templates(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace senids::semantic
