// Behavioral templates and the matching engine. A template is an ordered
// list of event statements; a program satisfies the template (P |= T in
// the notation of Christodorescu et al.) iff its lifted event stream
// contains a subsequence matching every statement under one consistent
// variable binding. Gaps in the subsequence are precisely the paper's
// junk-instruction tolerance; matching on lifted events (not syntax)
// provides NOP-insertion, register-reassignment and
// equivalent-instruction tolerance; and matching on the execution-order
// trace provides out-of-order-code tolerance.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/event.hpp"
#include "semantic/pattern.hpp"
#include "util/bytes.hpp"
#include "arch/insn.hpp"

namespace senids::semantic {

/// Threat classes reported by alerts (maps onto the paper's experiments).
enum class ThreatClass : std::uint8_t {
  kDecryptionLoop,   // polymorphic decoder (Table 2)
  kShellSpawn,       // Linux shell spawning (Table 1)
  kPortBindShell,    // shell bound to a network port (Table 1, "B" rows)
  kReverseShell,     // connect-back shell (extension family)
  kCodeRedII,        // Code Red II exploitation vector (Table 3)
  kCustom,
};

std::string_view threat_class_name(ThreatClass c) noexcept;

/// One statement of a template.
struct Stmt {
  enum class Kind : std::uint8_t {
    kMemWrite,    // mem[addr_pat] := value_pat
    kRegWrite,    // some register := value_pat
    kAdvance,     // a register appearing in binding `ref_var` is stepped
                  // by a nonzero constant (pointer walk)
    kBranchBack,  // conditional branch to an earlier point of the trace,
                  // at or before the first matched statement
    kSyscall,     // int `vector` with constrained registers
  };

  Kind kind{};

  // kMemWrite / kRegWrite
  PatPtr addr;   // kMemWrite only
  PatPtr value;
  /// Required store width in bits for kMemWrite (0 = any). Decoder
  /// templates pin this to 8: the engines they describe decode bytewise,
  /// and wide random-immediate stores are a false-positive magnet.
  std::uint8_t width = 0;
  /// kMemWrite: require the stored value, viewed as a function f of the
  /// loaded byte, to be a bijection on [0,255]. Every decryption routine
  /// must be invertible; coincidental or/and "transforms" in data are
  /// not. Verified by exact evaluation over all 256 inputs.
  bool require_invertible = false;

  // kAdvance
  std::string ref_var;

  // kSyscall
  /// Event vector to match: 0x80 for Linux int 0x80, ir::kSyscallVector
  /// (0x100) for the x86-64 `syscall` instruction. The vector also selects
  /// which register carries the first argument (ebx vs rdi).
  std::uint16_t vector = 0x80;
  /// Required low byte of eax/rax (the Linux syscall number).
  std::optional<std::uint8_t> sysno;
  /// Required low byte of the first-argument register (ebx for int 0x80,
  /// rdi for `syscall`): socketcall sub-function, dup2 fd, etc.
  std::optional<std::uint8_t> ebx_low;
  /// If set, the first-argument register (ebx / rdi by vector) must be a
  /// constant offset into the analyzed buffer and the bytes there must
  /// start with this string (e.g. "/bin").
  std::string ebx_points_to;
};

struct Template {
  std::string name;
  ThreatClass threat = ThreatClass::kCustom;
  std::vector<Stmt> stmts;
  /// Free-text note shown in alerts (which figure/table it reproduces).
  std::string note;
  /// Architecture tag (`arch: x86_64` in the DSL; default x86_32). The
  /// matcher itself is arch-agnostic — statement vectors select the
  /// calling convention — but the linter validates syscall numbers and
  /// store widths against the tagged architecture's rules.
  std::string arch = "x86_32";
};

/// Everything the matcher needs to know about one analyzed code run.
struct LiftedCode {
  const std::vector<arch::Instruction>* trace = nullptr;
  const std::vector<ir::Event>* events = nullptr;
  util::ByteView buffer;  // the binary frame the trace was decoded from
};

struct MatchResult {
  /// Event index matched by each statement, parallel to Template::stmts.
  std::vector<std::size_t> matched_events;
  Env bindings;
  /// Offset of the first matched instruction within the buffer.
  std::size_t start_offset = 0;
};

/// Try to satisfy `t` against `code`. Returns the first match found.
std::optional<MatchResult> match_template(const Template& t, const LiftedCode& code);

/// Human-readable explanation of a match: one line per matched statement
/// with the satisfying instruction and its event. Used by senids_disasm
/// and the examples to show *why* a template fired.
std::string format_match(const Template& t, const LiftedCode& code,
                         const MatchResult& match);

// ------------------------------------------------------- statement sugar

Stmt st_mem_write(PatPtr addr, PatPtr value, std::uint8_t width_bits = 0);
/// kMemWrite statement for decoder loops: byte-wide and invertible.
Stmt st_decode_store(PatPtr addr, PatPtr value);
Stmt st_reg_write(PatPtr value);
Stmt st_advance(std::string ref_var);
Stmt st_branch_back();
Stmt st_syscall(std::uint8_t sysno);
Stmt st_socketcall(std::uint8_t subfn);
Stmt st_syscall_str(std::uint8_t sysno, std::string ebx_points_to);
/// x86-64 `syscall` statements (vector ir::kSyscallVector, args in rdi..).
Stmt st_syscall64(std::uint8_t sysno);
Stmt st_syscall64_low(std::uint8_t sysno, std::uint8_t rdi_low);
Stmt st_syscall64_str(std::uint8_t sysno, std::string rdi_points_to);

}  // namespace senids::semantic
