// Expression patterns: templates describe the *values* malicious code
// computes, with pattern variables standing for registers, addresses and
// symbolic constants (the paper's "variables and symbolic constants").
// A variable binds on first use and must match structurally-equal
// expressions on every later use; this is what makes the matcher immune
// to register reassignment.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace senids::semantic {

enum class PatKind : std::uint8_t {
  kAny,         // matches any expression; binds var
  kConst,       // any constant (optionally nonzero); binds var
  kFixedConst,  // one specific constant value
  kLoad,        // memory load whose address matches a sub-pattern
  kBin,         // specific binary operator (commutative ops try both orders)
  kUn,          // specific unary operator
  kTransform,   // any expression tree over an allowed operator set whose
                // leaves are constants or matches of `base` (>=1 base leaf)
};

struct Pattern;
using PatPtr = std::shared_ptr<const Pattern>;

struct Pattern {
  PatKind kind{};
  std::string var;            // binding name; empty = anonymous
  bool require_nonzero = false;  // kConst
  std::uint32_t fixed = 0;       // kFixedConst
  ir::BinOp bop{};               // kBin
  ir::UnOp uop{};                // kUn
  PatPtr a, b;                   // children (kLoad: a = address pattern)
  // kTransform
  PatPtr base;
  std::vector<ir::BinOp> allowed;
  bool allow_not = true;
  bool require_const_leaf = true;
};

// Factory helpers (the built-in template library and the DSL both build
// patterns through these).
PatPtr p_any(std::string var = "");
PatPtr p_const(std::string var = "", bool nonzero = true);
PatPtr p_fixed(std::uint32_t value);
PatPtr p_load(PatPtr addr);
PatPtr p_bin(ir::BinOp op, PatPtr a, PatPtr b);
PatPtr p_un(ir::UnOp op, PatPtr x);
PatPtr p_transform(PatPtr base, std::vector<ir::BinOp> allowed, bool allow_not = true,
                   bool require_const_leaf = true);

/// Variable bindings accumulated during a match.
using Env = std::map<std::string, ir::ExprPtr, std::less<>>;

/// Match `e` against `p`, extending `env`. On failure `env` is left in an
/// unspecified state — callers must match against a copy they can discard
/// (the template matcher does exactly that).
bool match_expr(const PatPtr& p, const ir::ExprPtr& e, Env& env);

/// Debug rendering of a pattern.
std::string to_string(const PatPtr& p);

}  // namespace senids::semantic
