// Built-in template library reproducing the paper's template set:
//  - xor decryption loop        (Figures 1/2, Table 2 "xor template")
//  - additive decryption loop   (equivalent-instruction variant)
//  - rotate decryption loop     (extension beyond the paper's set)
//  - ADMmutate alternate decoder: mov/or/and/not over one memory
//    location and register pair (Figure 7, the template that lifts
//    ADMmutate detection from 68% to 100%)
//  - Linux shell spawning, immediate and port-bound (Figure 6, Table 1)
//  - Code Red II exploitation vector (Table 3)
#pragma once

#include <vector>

#include "semantic/template.hpp"

namespace senids::semantic {

/// The xor template alone — the configuration that yielded the paper's
/// initial 68% ADMmutate detection rate (Section 5.2).
std::vector<Template> make_xor_only_library();

/// Decryption-loop templates only (xor + additive + alternate).
std::vector<Template> make_decoder_library();

/// The full standard library used by the NIDS in every experiment.
std::vector<Template> make_standard_library();

/// Standard library plus the opt-in extension templates (currently the
/// rotate-decoder). The rotate template is deliberately NOT in the
/// standard set: rotation is the one invertible byte transform that
/// coincidental code-shaped data produces at measurable rates, and the
/// paper's zero-false-positive result depends on "high quality
/// templates" — template selection is a precision decision.
std::vector<Template> make_extended_library();

// Individual templates, exposed for tests and ablations.
Template tmpl_xor_decrypt_loop();
Template tmpl_add_decrypt_loop();
Template tmpl_ror_decrypt_loop();
Template tmpl_admmutate_alt_decoder();
Template tmpl_shell_spawn_pushed_string();
Template tmpl_shell_spawn_embedded_string();
Template tmpl_port_bind_shell();
Template tmpl_reverse_shell();
Template tmpl_code_red_ii();
Template tmpl_shell_spawn_stack_64();
Template tmpl_shell_spawn_embedded_64();
Template tmpl_port_bind_shell_64();
Template tmpl_reverse_shell_64();

}  // namespace senids::semantic
