// The semantic-analysis stage (stages c-e of Figure 3): takes a binary
// frame, finds candidate code, lifts it, and matches the template set.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/lifter.hpp"
#include "semantic/template.hpp"
#include "util/bytes.hpp"

namespace senids::semantic {

struct Detection {
  std::string template_name;
  ThreatClass threat{};
  std::size_t entry_offset = 0;  // code entry within the frame
  std::size_t match_offset = 0;  // first matched instruction
  Env bindings;
};

struct AnalyzerStats {
  std::size_t frames = 0;
  std::size_t candidate_runs = 0;
  std::size_t traces = 0;
  std::size_t instructions_lifted = 0;
  std::size_t template_matches_tried = 0;
  // Work-budget bailouts: frames that filled the candidate-entry budget
  // (max_entries) or burned the per-frame instruction budget
  // (max_total_insns). A spike is itself a signal — adversarial frames
  // shaped to exhaust the analyzer look exactly like this.
  std::size_t entry_budget_exhausted = 0;
  std::size_t insn_budget_exhausted = 0;
  /// Per-stage wall time inside analyze(): candidate scan + execution
  /// tracing (disasm), x86 -> IR (lift), template matching (match).
  /// Only accumulated while obs::metrics_enabled(); zero otherwise.
  double disasm_seconds = 0.0;
  double lift_seconds = 0.0;
  double match_seconds = 0.0;
};

/// Thread-compatible analyzer: `analyze` is const and side-effect free
/// apart from the stats object the caller passes in, so one analyzer is
/// shared by every worker in the parallel pipeline.
class SemanticAnalyzer {
 public:
  struct Options {
    std::size_t min_run_insns = 6;     // candidate-run threshold
    /// Entry points tried per frame. Large by default: the paper's system
    /// disassembles whole samples; per-entry cost here is microseconds,
    /// and the loop exits early once every template has fired.
    std::size_t max_entries = 8192;
    std::size_t max_trace_insns = 4096;
    /// Hard per-frame work budget: total instructions lifted across all
    /// entries. Bounds the worst case on pathological frames (the entry
    /// count alone does not, since each entry may trace thousands of
    /// instructions).
    std::size_t max_total_insns = 1u << 20;
    /// Verification hook invoked after every lift with the traced
    /// instructions and the lifted result. Empty = disabled (the default;
    /// NidsEngine installs senids::verify::verify_ir here in debug
    /// builds). Must be thread-safe: with threads > 1 every worker calls
    /// it concurrently. Runs outside the lift stage clock.
    std::function<void(const std::vector<x86::Instruction>&, const ir::LiftResult&)>
        post_lift_hook;
  };

  explicit SemanticAnalyzer(std::vector<Template> templates)
      : SemanticAnalyzer(std::move(templates), Options{}) {}
  SemanticAnalyzer(std::vector<Template> templates, Options options);

  /// Analyze one binary frame; returns at most one detection per template.
  std::vector<Detection> analyze(util::ByteView frame, AnalyzerStats* stats = nullptr) const;

  [[nodiscard]] const std::vector<Template>& templates() const noexcept { return templates_; }

 private:
  std::vector<Template> templates_;
  Options options_;
};

}  // namespace senids::semantic
