// The semantic-analysis stage (stages c-e of Figure 3): takes a binary
// frame, finds candidate code, lifts it, and matches the template set.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/lifter.hpp"
#include "semantic/template.hpp"
#include "util/bytes.hpp"
#include "arch/scan.hpp"

namespace senids::arch {
class Arch;
}  // namespace senids::arch

namespace senids::semantic {

struct Detection {
  std::string template_name;
  ThreatClass threat{};
  std::size_t entry_offset = 0;  // code entry within the frame
  std::size_t match_offset = 0;  // first matched instruction
  Env bindings;
};

struct AnalyzerStats {
  std::size_t frames = 0;
  std::size_t candidate_runs = 0;
  std::size_t traces = 0;
  std::size_t instructions_lifted = 0;
  std::size_t template_matches_tried = 0;
  // Work-budget bailouts: frames that filled the candidate-entry budget
  // (max_entries) or burned the per-frame instruction budget
  // (max_total_insns). A spike is itself a signal — adversarial frames
  // shaped to exhaust the analyzer look exactly like this.
  std::size_t entry_budget_exhausted = 0;
  std::size_t insn_budget_exhausted = 0;
  /// Per-stage wall time inside analyze(): candidate scan + execution
  /// tracing (disasm), x86 -> IR (lift), template matching (match).
  /// Only accumulated while obs::metrics_enabled(); zero otherwise.
  double disasm_seconds = 0.0;
  double lift_seconds = 0.0;
  double match_seconds = 0.0;
};

/// Reusable per-worker working memory for analyze(). Every buffer the
/// frame loop fills — candidate runs, entry offsets, the execution
/// trace, the lifted IR events, plus the scanner's internal arrays —
/// lives here, so a worker that keeps one scratch across calls analyzes
/// frames without per-frame heap churn (buffers grow to the high-water
/// mark and are then reused). Not thread-safe; one per worker thread.
/// Passing no scratch (the classic analyze() signature) allocates a
/// transient one per call, which is the old behaviour exactly.
struct AnalyzerScratch {
  arch::ScanScratch scan;
  std::vector<arch::CodeRun> runs;
  std::vector<std::size_t> entries;
  std::vector<arch::Instruction> entry_sweep;  // linear sweep per run
  std::vector<arch::Instruction> trace;
  ir::LiftResult lifted;
  std::vector<char> entry_seen;   // offset dedup bitmap, frame-sized
  std::vector<char> fired;        // per-template "already fired" flags
};

/// Thread-compatible analyzer: `analyze` is const and side-effect free
/// apart from the stats/scratch objects the caller passes in. The
/// template library is held behind a shared_ptr, so per-worker analyzer
/// clones (make per-worker instances via the sharing constructor) all
/// read one immutable template set — cloning an analyzer never copies
/// the templates.
class SemanticAnalyzer {
 public:
  struct Options {
    /// Architecture whose decoder/scanner rules govern the candidate
    /// scan and execution tracing (the lifter and def/use tables key off
    /// Instruction::mode, so everything downstream follows). nullptr =
    /// arch::Arch::x86_32(), the classic pipeline.
    const arch::Arch* arch = nullptr;
    std::size_t min_run_insns = 6;     // candidate-run threshold
    /// Entry points tried per frame. Large by default: the paper's system
    /// disassembles whole samples; per-entry cost here is microseconds,
    /// and the loop exits early once every template has fired.
    std::size_t max_entries = 8192;
    std::size_t max_trace_insns = 4096;
    /// Hard per-frame work budget: total instructions lifted across all
    /// entries. Bounds the worst case on pathological frames (the entry
    /// count alone does not, since each entry may trace thousands of
    /// instructions).
    std::size_t max_total_insns = 1u << 20;
    /// Verification hook invoked after every lift with the traced
    /// instructions and the lifted result. Empty = disabled (the default;
    /// NidsEngine installs senids::verify::verify_ir here in debug
    /// builds). Must be thread-safe: with threads > 1 every worker calls
    /// it concurrently. Runs outside the lift stage clock.
    std::function<void(const std::vector<arch::Instruction>&, const ir::LiftResult&)>
        post_lift_hook;
  };

  explicit SemanticAnalyzer(std::vector<Template> templates)
      : SemanticAnalyzer(std::move(templates), Options{}) {}
  SemanticAnalyzer(std::vector<Template> templates, Options options);
  /// Sharing constructor: the per-worker clone path. The new analyzer
  /// reads the same immutable template set as every sibling.
  SemanticAnalyzer(std::shared_ptr<const std::vector<Template>> templates, Options options);

  /// Analyze one binary frame; returns at most one detection per template.
  std::vector<Detection> analyze(util::ByteView frame, AnalyzerStats* stats = nullptr) const;
  /// Scratch-reusing form for the worker hot loop (see AnalyzerScratch).
  std::vector<Detection> analyze(util::ByteView frame, AnalyzerStats* stats,
                                 AnalyzerScratch& scratch) const;

  [[nodiscard]] const std::vector<Template>& templates() const noexcept { return *templates_; }
  /// The shared template set, for constructing per-worker clones.
  [[nodiscard]] const std::shared_ptr<const std::vector<Template>>& shared_templates()
      const noexcept {
    return templates_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  std::shared_ptr<const std::vector<Template>> templates_;
  Options options_;
};

}  // namespace senids::semantic
