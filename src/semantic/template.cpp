#include "semantic/template.hpp"

#include "arch/defuse.hpp"
#include "arch/format.hpp"

#include <cstring>
#include <map>
#include <unordered_map>

namespace senids::semantic {

using ir::Event;
using ir::EventKind;
using ir::ExprKind;
using ir::ExprPtr;

std::string_view threat_class_name(ThreatClass c) noexcept {
  switch (c) {
    case ThreatClass::kDecryptionLoop: return "decryption-loop";
    case ThreatClass::kShellSpawn: return "shell-spawn";
    case ThreatClass::kPortBindShell: return "port-bind-shell";
    case ThreatClass::kReverseShell: return "reverse-shell";
    case ThreatClass::kCodeRedII: return "code-red-ii";
    case ThreatClass::kCustom: return "custom";
  }
  return "?";
}

Stmt st_mem_write(PatPtr addr, PatPtr value, std::uint8_t width_bits) {
  Stmt s;
  s.kind = Stmt::Kind::kMemWrite;
  s.addr = std::move(addr);
  s.value = std::move(value);
  s.width = width_bits;
  return s;
}

Stmt st_decode_store(PatPtr addr, PatPtr value) {
  Stmt s = st_mem_write(std::move(addr), std::move(value), /*width_bits=*/8);
  s.require_invertible = true;
  return s;
}

Stmt st_reg_write(PatPtr value) {
  Stmt s;
  s.kind = Stmt::Kind::kRegWrite;
  s.value = std::move(value);
  return s;
}

Stmt st_advance(std::string ref_var) {
  Stmt s;
  s.kind = Stmt::Kind::kAdvance;
  s.ref_var = std::move(ref_var);
  return s;
}

Stmt st_branch_back() {
  Stmt s;
  s.kind = Stmt::Kind::kBranchBack;
  return s;
}

Stmt st_syscall(std::uint8_t sysno) {
  Stmt s;
  s.kind = Stmt::Kind::kSyscall;
  s.sysno = sysno;
  return s;
}

Stmt st_socketcall(std::uint8_t subfn) {
  Stmt s = st_syscall(0x66);
  s.ebx_low = subfn;
  return s;
}

Stmt st_syscall_str(std::uint8_t sysno, std::string ebx_points_to) {
  Stmt s = st_syscall(sysno);
  s.ebx_points_to = std::move(ebx_points_to);
  return s;
}

Stmt st_syscall64(std::uint8_t sysno) {
  Stmt s = st_syscall(sysno);
  s.vector = ir::kSyscallVector;
  return s;
}

Stmt st_syscall64_low(std::uint8_t sysno, std::uint8_t rdi_low) {
  Stmt s = st_syscall64(sysno);
  s.ebx_low = rdi_low;
  return s;
}

Stmt st_syscall64_str(std::uint8_t sysno, std::string rdi_points_to) {
  Stmt s = st_syscall64(sysno);
  s.ebx_points_to = std::move(rdi_points_to);
  return s;
}

namespace {

/// Extract the provably-known low byte of a value, if any. Handles the
/// two forms shellcode produces: a folded constant (`xor eax,eax; mov
/// al,N`) and an unfolded sub-register merge whose masked side cannot
/// touch bits 0..7 (`mov al,N` over unknown eax).
std::optional<std::uint8_t> low_byte_const(const ExprPtr& e) {
  std::uint32_t v;
  if (ir::is_const(e, &v)) return static_cast<std::uint8_t>(v & 0xff);
  if (e && e->kind == ExprKind::kBin && e->bop == ir::BinOp::kOr) {
    std::uint32_t c, m;
    // Or(And(x, m), c) with m not covering the low byte.
    if (ir::is_const(e->rhs, &c) && e->lhs->kind == ExprKind::kBin &&
        e->lhs->bop == ir::BinOp::kAnd && ir::is_const(e->lhs->rhs, &m) &&
        (m & 0xff) == 0) {
      return static_cast<std::uint8_t>(c & 0xff);
    }
  }
  return std::nullopt;
}

/// Evaluate a matched store-value tree as a function of the loaded byte
/// `v`. All load leaves in a matched decoder tree refer to the same
/// location (the pattern enforces base consistency), so each evaluates to
/// `v`. Rotates are evaluated with 8-bit semantics, matching the byte
/// registers the decoders rotate. Returns nullopt for trees containing
/// initial-register or unknown leaves (not a pure byte function).
std::optional<std::uint32_t> eval_byte_fn(const ExprPtr& e, std::uint32_t v) {
  switch (e->kind) {
    case ExprKind::kConst:
      return e->cval;
    case ExprKind::kLoad:
      return v;
    case ExprKind::kUn: {
      auto x = eval_byte_fn(e->lhs, v);
      if (!x) return std::nullopt;
      return e->uop == ir::UnOp::kNot ? ~*x : 0u - *x;
    }
    case ExprKind::kBin: {
      auto a = eval_byte_fn(e->lhs, v);
      auto b = eval_byte_fn(e->rhs, v);
      if (!a || !b) return std::nullopt;
      switch (e->bop) {
        case ir::BinOp::kAdd: return *a + *b;
        case ir::BinOp::kSub: return *a - *b;
        case ir::BinOp::kXor: return *a ^ *b;
        case ir::BinOp::kOr: return *a | *b;
        case ir::BinOp::kAnd: return *a & *b;
        case ir::BinOp::kShl: return (*b & 31) ? (*a << (*b & 31)) : *a;
        case ir::BinOp::kShr: return (*b & 31) ? (*a >> (*b & 31)) : *a;
        case ir::BinOp::kSar:
          return static_cast<std::uint32_t>(static_cast<std::int32_t>(*a) >>
                                            (*b & 31));
        case ir::BinOp::kRol: {
          const unsigned sh = *b & 7;
          const std::uint32_t x8 = *a & 0xff;
          return sh ? (((x8 << sh) | (x8 >> (8 - sh))) & 0xff) : x8;
        }
        case ir::BinOp::kRor: {
          const unsigned sh = *b & 7;
          const std::uint32_t x8 = *a & 0xff;
          return sh ? (((x8 >> sh) | (x8 << (8 - sh))) & 0xff) : x8;
        }
        case ir::BinOp::kMul: return *a * *b;
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

/// Is the stored value a bijective byte transform of the loaded byte?
bool is_invertible_byte_fn(const ExprPtr& e) {
  bool seen[256] = {};
  for (std::uint32_t v = 0; v < 256; ++v) {
    auto out = eval_byte_fn(e, v);
    if (!out) return false;
    const std::uint8_t b = static_cast<std::uint8_t>(*out & 0xff);
    if (seen[b]) return false;
    seen[b] = true;
  }
  return true;
}

/// Strip trailing constant additions: returns the symbolic base (nullptr
/// for a pure constant) and accumulates the constant displacement.
const ExprPtr* addr_base(const ExprPtr& e, std::int64_t& off) {
  const ExprPtr* cur = &e;
  while ((*cur)->kind == ExprKind::kBin && (*cur)->bop == ir::BinOp::kAdd &&
         (*cur)->rhs->kind == ExprKind::kConst) {
    off += static_cast<std::int32_t>((*cur)->rhs->cval);
    cur = &(*cur)->lhs;
  }
  if ((*cur)->kind == ExprKind::kConst) {
    off += static_cast<std::int32_t>((*cur)->cval);
    return nullptr;
  }
  return cur;
}

/// If a == b + c for a constant c, return c. Works whether the pointer is
/// rooted in an initial register (init(esi) + 1), a derived expression, or
/// a known buffer constant (jmp/call/pop pointers fold to constants).
std::optional<std::int64_t> addr_diff(const ExprPtr& a, const ExprPtr& b) {
  std::int64_t oa = 0, ob = 0;
  const ExprPtr* ba = addr_base(a, oa);
  const ExprPtr* bb = addr_base(b, ob);
  if (ba == nullptr && bb == nullptr) return oa - ob;
  if (ba && bb && ir::struct_eq(*ba, *bb)) return oa - ob;
  return std::nullopt;
}

/// Per-branch match state: expression bindings plus, for every variable
/// bound by a MemWrite address pattern, the architectural register family
/// the matched store instruction addressed through. Decoder templates use
/// the latter to demand that the pointer walk steps the *same* register
/// the store dereferenced — the strongest single false-positive filter.
struct MatchState {
  Env env;
  std::map<std::string, arch::RegFamily, std::less<>> addr_regs;
  std::map<std::string, std::uint8_t, std::less<>> addr_widths;  // store width, bits
  /// The matched pointer-advance, when the template has one: the stepped
  /// register must not be written again before the loop-back, or the next
  /// iteration would not see the advanced pointer.
  std::optional<arch::RegFamily> advance_reg;
  std::size_t advance_event = 0;
};

struct Search {
  const Template& t;
  const LiftedCode& code;
  std::unordered_map<std::size_t, std::size_t> offset_to_index;
  std::size_t attempts = 0;
  static constexpr std::size_t kAttemptCap = 1u << 20;
  std::optional<MatchResult> result;

  explicit Search(const Template& tmpl, const LiftedCode& c) : t(tmpl), code(c) {
    offset_to_index.reserve(code.trace->size());
    for (std::size_t i = 0; i < code.trace->size(); ++i) {
      offset_to_index.emplace((*code.trace)[i].offset, i);
    }
  }

  /// Register family a store instruction addresses through (base first,
  /// then index; pushes and string stores use their implicit registers).
  std::optional<arch::RegFamily> store_addr_reg(const Event& ev) const {
    const arch::Instruction& insn = (*code.trace)[ev.insn_index];
    for (const arch::Operand& op : insn.ops) {
      if (op.kind != arch::OperandKind::kMem) continue;
      if (op.mem.base) return op.mem.base->family;
      if (op.mem.index) return op.mem.index->family;
      return std::nullopt;  // absolute address
    }
    switch (insn.mnemonic) {
      case arch::Mnemonic::kPush:
      case arch::Mnemonic::kPushf:
      case arch::Mnemonic::kPusha:
      case arch::Mnemonic::kCall:
      case arch::Mnemonic::kEnter:
        return arch::RegFamily::kSp;
      case arch::Mnemonic::kStos:
      case arch::Mnemonic::kMovs:
        return arch::RegFamily::kDi;
      default:
        return std::nullopt;
    }
  }

  /// A decoder's back edge is driven by a count-down loop: either a
  /// loop/loope/loopne/jecxz instruction (implicit ecx), or a jnz whose
  /// nearest preceding flag-setter is a register decrement (dec ecx /
  /// sub ecx, imm). Returns the counter register, or nullopt when the
  /// branch shows no such discipline — which coincidental backward
  /// branches in data essentially never do.
  std::optional<arch::RegFamily> loop_counter_of(const Event& ev) const {
    const arch::Instruction& brinsn = (*code.trace)[ev.insn_index];
    switch (brinsn.mnemonic) {
      case arch::Mnemonic::kLoop:
      case arch::Mnemonic::kLoope:
      case arch::Mnemonic::kLoopne:
        return arch::RegFamily::kCx;  // implicit ecx count-down
      case arch::Mnemonic::kJecxz:
        // jecxz branches while ecx is ZERO — it cannot close a count-down
        // loop (observed false-positive shape).
        return std::nullopt;
      default:
        break;
    }
    if (brinsn.cond != arch::Cond::kNe) return std::nullopt;  // count-down = jnz
    for (std::size_t i = ev.insn_index; i-- > 0;) {
      const arch::Instruction& insn = (*code.trace)[i];
      if (!arch::def_use(insn).flags_def) continue;
      if (insn.ops[0].kind != arch::OperandKind::kReg) return std::nullopt;
      switch (insn.mnemonic) {
        case arch::Mnemonic::kDec:
          return insn.ops[0].reg.family;
        case arch::Mnemonic::kSub:
          if (insn.ops[1].kind == arch::OperandKind::kImm) {
            return insn.ops[0].reg.family;
          }
          return std::nullopt;
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // no flag source at all
  }

  bool stmt_matches(const Stmt& s, const Event& ev, MatchState& state,
                    const std::vector<std::size_t>& matched) {
    Env& env = state.env;
    switch (s.kind) {
      case Stmt::Kind::kMemWrite: {
        if (ev.kind != EventKind::kMemWrite) return false;
        if (s.width != 0 && ev.width != s.width) return false;
        if (!match_expr(s.addr, ev.addr, env) || !match_expr(s.value, ev.value, env)) {
          return false;
        }
        if (s.require_invertible) {
          if (!is_invertible_byte_fn(ev.value)) return false;
          // The key operand must not live in the register that addresses
          // the store: a "key" carved out of the walking pointer changes
          // every iteration, which no fixed-key decoder does (observed
          // false-positive shape: `add byte [edx], dh`).
          const arch::Instruction& insn = (*code.trace)[ev.insn_index];
          if (insn.ops[1].kind == arch::OperandKind::kReg &&
              insn.ops[0].kind == arch::OperandKind::kMem && insn.ops[0].mem.base &&
              insn.ops[1].reg.family == insn.ops[0].mem.base->family) {
            return false;
          }
        }
        if (s.addr && !s.addr->var.empty()) {
          if (auto family = store_addr_reg(ev)) {
            state.addr_regs.insert_or_assign(s.addr->var, *family);
          }
          state.addr_widths.insert_or_assign(s.addr->var, ev.width);
        }
        return true;
      }

      case Stmt::Kind::kRegWrite:
        return ev.kind == EventKind::kRegWrite && match_expr(s.value, ev.value, env);

      case Stmt::Kind::kAdvance: {
        // The pointer walk: some register now holds the bound address
        // plus a small nonzero constant. Computing the step as a
        // base+displacement difference makes the check agnostic to how
        // the pointer was obtained (initial register, esp-derived,
        // jmp/call/pop constant) and to how the step was encoded
        // (inc / add / sub -neg / lea).
        if (ev.kind != EventKind::kRegWrite || !ev.value) return false;
        // An in-place decoder's pointer walk is plain pointer arithmetic:
        // inc/dec/add/sub/lea. String ops (cmps advances esi as a side
        // effect of comparing) and movs/stos (which would clobber the
        // freshly decoded byte) are coincidences, not walks.
        switch ((*code.trace)[ev.insn_index].mnemonic) {
          case arch::Mnemonic::kInc:
          case arch::Mnemonic::kDec:
          case arch::Mnemonic::kAdd:
          case arch::Mnemonic::kSub:
          case arch::Mnemonic::kLea:
            break;
          default:
            return false;
        }
        auto it = env.find(s.ref_var);
        if (it == env.end()) return false;
        // The register being stepped must be the one the matched store
        // addressed through.
        auto reg_it = state.addr_regs.find(s.ref_var);
        if (reg_it != state.addr_regs.end() && reg_it->second != ev.reg) return false;
        auto step = addr_diff(ev.value, it->second);
        if (!step) return false;
        const std::int64_t mag = *step < 0 ? -*step : *step;
        // Real decoders walk their buffer in element-size strides; any
        // other delta is far more likely a coincidental register write.
        if (mag != 1 && mag != 2 && mag != 4) return false;
        // The stride must equal the decoded element size: a byte decoder
        // walks one byte per iteration.
        auto width_it = state.addr_widths.find(s.ref_var);
        if (width_it != state.addr_widths.end() &&
            mag != width_it->second / 8) {
          return false;
        }
        state.advance_reg = ev.reg;
        state.advance_event = ev.insn_index;
        return true;
      }

      case Stmt::Kind::kBranchBack: {
        if (ev.kind != EventKind::kBranch || !ev.conditional || !ev.target) return false;
        auto counter = loop_counter_of(ev);
        if (!counter) return false;
        // The iteration counter and the walked pointer are distinct
        // registers in every real engine; random data overwhelmingly
        // produces loops where the pointer doubles as the counter.
        if (state.advance_reg && *counter == *state.advance_reg) return false;
        auto it = offset_to_index.find(*ev.target);
        if (it == offset_to_index.end()) return false;
        const std::size_t target_idx = it->second;
        // Counter sanity: if the counter register was written before the
        // loop entry, its entry value must be a plausible constant count.
        // (An unwritten counter is fine — the snippet's caller provides
        // it, as in Figure 1 — but a garbage junk value is not a length.)
        {
          const Event* last_write = nullptr;
          for (const Event& prior : *code.events) {
            if (prior.insn_index >= target_idx) break;
            if (prior.kind == EventKind::kRegWrite && prior.reg == *counter) {
              last_write = &prior;
            }
          }
          if (last_write) {
            std::uint32_t count_value = 0;
            if (!ir::is_const(last_write->value, &count_value) || count_value == 0 ||
                count_value > (1u << 22)) {
              return false;
            }
          }
        }
        // Backward in execution order...
        if (target_idx >= ev.insn_index) return false;
        // ...forming a compact loop body (decoder loops are tight; distant
        // coincidental branches are the main false-positive vector)...
        if (ev.insn_index - target_idx > 64) return false;
        // ...that encloses every previously matched statement, so the
        // transform and the pointer walk actually execute per iteration.
        for (std::size_t m : matched) {
          const Event& prior = (*code.events)[m];
          if (prior.insn_index < target_idx || prior.insn_index >= ev.insn_index) {
            return false;
          }
        }
        // The advanced pointer must survive until the back edge: a later
        // write to the same register would feed the next iteration a
        // different address (real decoders never do this; coincidental
        // matches in data routinely do).
        if (state.advance_reg) {
          for (const Event& later : *code.events) {
            if (later.kind == EventKind::kRegWrite && later.reg == *state.advance_reg &&
                later.insn_index > state.advance_event &&
                later.insn_index < ev.insn_index) {
              return false;
            }
          }
        }
        return true;
      }

      case Stmt::Kind::kSyscall: {
        if (ev.kind != EventKind::kSyscall || ev.vector != s.vector) return false;
        // First-argument register by calling convention: ebx for int 0x80,
        // rdi for the x86-64 `syscall` instruction.
        const auto arg0 = static_cast<unsigned>(s.vector == ir::kSyscallVector
                                                    ? arch::RegFamily::kDi
                                                    : arch::RegFamily::kBx);
        if (s.sysno) {
          auto got = low_byte_const(ev.syscall_regs[static_cast<unsigned>(arch::RegFamily::kAx)]);
          if (!got || *got != *s.sysno) return false;
        }
        if (s.ebx_low) {
          auto got = low_byte_const(ev.syscall_regs[arg0]);
          if (!got || *got != *s.ebx_low) return false;
        }
        if (!s.ebx_points_to.empty()) {
          std::uint32_t ptr;
          if (!ir::is_const(ev.syscall_regs[arg0], &ptr))
            return false;
          const auto& buf = code.buffer;
          const std::string& want = s.ebx_points_to;
          if (ptr + want.size() > buf.size()) return false;
          if (std::memcmp(buf.data() + ptr, want.data(), want.size()) != 0) return false;
        }
        return true;
      }
    }
    return false;
  }

  bool dfs(std::size_t stmt_idx, std::size_t event_idx, const MatchState& state,
           std::vector<std::size_t>& matched) {
    if (stmt_idx == t.stmts.size()) {
      MatchResult r;
      r.matched_events = matched;
      r.bindings = state.env;
      r.start_offset = (*code.events)[matched.front()].insn_offset;
      result = std::move(r);
      return true;
    }
    const auto& events = *code.events;
    for (std::size_t e = event_idx; e < events.size(); ++e) {
      if (++attempts > kAttemptCap) return false;  // hostile-input safety valve
      MatchState trial = state;
      if (stmt_matches(t.stmts[stmt_idx], events[e], trial, matched)) {
        matched.push_back(e);
        if (dfs(stmt_idx + 1, e + 1, trial, matched)) return true;
        matched.pop_back();
      }
    }
    return false;
  }
};

}  // namespace

std::string format_match(const Template& t, const LiftedCode& code,
                         const MatchResult& match) {
  std::string out = "template '" + t.name + "' (" +
                    std::string(threat_class_name(t.threat)) + ")";
  if (!t.note.empty()) out += " — " + t.note;
  out.push_back('\n');
  char buf[160];
  for (std::size_t i = 0; i < match.matched_events.size() && i < t.stmts.size(); ++i) {
    const Event& ev = (*code.events)[match.matched_events[i]];
    const arch::Instruction& insn = (*code.trace)[ev.insn_index];
    const char* what = "";
    switch (t.stmts[i].kind) {
      case Stmt::Kind::kMemWrite: what = "store"; break;
      case Stmt::Kind::kRegWrite: what = "regwrite"; break;
      case Stmt::Kind::kAdvance: what = "advance"; break;
      case Stmt::Kind::kBranchBack: what = "loopback"; break;
      case Stmt::Kind::kSyscall: what = "syscall"; break;
    }
    std::snprintf(buf, sizeof buf, "  %-9s @%04zx  %s\n", what, insn.offset,
                  arch::format(insn).c_str());
    out += buf;
  }
  for (const auto& [var, value] : match.bindings) {
    out += "  " + var + " = " + ir::to_string(value) + "\n";
  }
  return out;
}

std::optional<MatchResult> match_template(const Template& t, const LiftedCode& code) {
  if (t.stmts.empty() || !code.trace || !code.events) return std::nullopt;
  Search search(t, code);
  std::vector<std::size_t> matched;
  matched.reserve(t.stmts.size());
  search.dfs(0, 0, MatchState{}, matched);
  return search.result;
}

}  // namespace senids::semantic
