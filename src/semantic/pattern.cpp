#include "semantic/pattern.hpp"

#include <algorithm>
#include <cstdio>

namespace senids::semantic {

using ir::ExprKind;
using ir::ExprPtr;

PatPtr p_any(std::string var) {
  auto p = std::make_shared<Pattern>();
  p->kind = PatKind::kAny;
  p->var = std::move(var);
  return p;
}

PatPtr p_const(std::string var, bool nonzero) {
  auto p = std::make_shared<Pattern>();
  p->kind = PatKind::kConst;
  p->var = std::move(var);
  p->require_nonzero = nonzero;
  return p;
}

PatPtr p_fixed(std::uint32_t value) {
  auto p = std::make_shared<Pattern>();
  p->kind = PatKind::kFixedConst;
  p->fixed = value;
  return p;
}

PatPtr p_load(PatPtr addr) {
  auto p = std::make_shared<Pattern>();
  p->kind = PatKind::kLoad;
  p->a = std::move(addr);
  return p;
}

PatPtr p_bin(ir::BinOp op, PatPtr a, PatPtr b) {
  auto p = std::make_shared<Pattern>();
  p->kind = PatKind::kBin;
  p->bop = op;
  p->a = std::move(a);
  p->b = std::move(b);
  return p;
}

PatPtr p_un(ir::UnOp op, PatPtr x) {
  auto p = std::make_shared<Pattern>();
  p->kind = PatKind::kUn;
  p->uop = op;
  p->a = std::move(x);
  return p;
}

PatPtr p_transform(PatPtr base, std::vector<ir::BinOp> allowed, bool allow_not,
                   bool require_const_leaf) {
  auto p = std::make_shared<Pattern>();
  p->kind = PatKind::kTransform;
  p->base = std::move(base);
  p->allowed = std::move(allowed);
  p->allow_not = allow_not;
  p->require_const_leaf = require_const_leaf;
  return p;
}

namespace {

/// Bind `var` to `e`, or verify consistency with an existing binding.
bool bind(const std::string& var, const ExprPtr& e, Env& env) {
  if (var.empty()) return true;
  auto it = env.find(var);
  if (it == env.end()) {
    env.emplace(var, e);
    return true;
  }
  return ir::struct_eq(it->second, e);
}

bool commutative(ir::BinOp op) {
  switch (op) {
    case ir::BinOp::kAdd:
    case ir::BinOp::kXor:
    case ir::BinOp::kOr:
    case ir::BinOp::kAnd:
    case ir::BinOp::kMul:
      return true;
    default:
      return false;
  }
}

/// kTransform walker: validates the tree shape and counts base/const
/// leaves. Binding happens through the base-pattern matches.
struct TransformWalk {
  const Pattern& pat;
  Env& env;
  int base_leaves = 0;
  int const_leaves = 0;
  int ops = 0;

  bool walk(const ExprPtr& e) {
    // A base match takes priority: the base pattern is typically a load,
    // which can never be an allowed internal node anyway.
    {
      Env trial = env;
      if (match_expr(pat.base, e, trial)) {
        env = std::move(trial);
        ++base_leaves;
        return true;
      }
    }
    if (e->kind == ExprKind::kConst) {
      ++const_leaves;
      return true;
    }
    if (e->kind == ExprKind::kBin &&
        std::find(pat.allowed.begin(), pat.allowed.end(), e->bop) != pat.allowed.end()) {
      ++ops;
      return walk(e->lhs) && walk(e->rhs);
    }
    // Byte-access plumbing: an And with a constant mask is how the lifter
    // represents sub-register reads of wider intermediate values. It is
    // transparent to the transform structure — traverse through it
    // without counting it as a transformation step.
    if (e->kind == ExprKind::kBin && e->bop == ir::BinOp::kAnd &&
        e->rhs->kind == ExprKind::kConst) {
      return walk(e->lhs);
    }
    if (e->kind == ExprKind::kUn && e->uop == ir::UnOp::kNot && pat.allow_not) {
      ++ops;
      return walk(e->lhs);
    }
    return false;
  }
};

}  // namespace

bool match_expr(const PatPtr& p, const ExprPtr& e, Env& env) {
  if (!p || !e) return false;
  switch (p->kind) {
    case PatKind::kAny:
      return bind(p->var, e, env);

    case PatKind::kConst: {
      std::uint32_t v;
      if (!ir::is_const(e, &v)) return false;
      if (p->require_nonzero && v == 0) return false;
      return bind(p->var, e, env);
    }

    case PatKind::kFixedConst: {
      std::uint32_t v;
      return ir::is_const(e, &v) && v == p->fixed;
    }

    case PatKind::kLoad:
      return e->kind == ExprKind::kLoad && match_expr(p->a, e->addr, env);

    case PatKind::kBin: {
      if (e->kind != ExprKind::kBin || e->bop != p->bop) return false;
      {
        Env trial = env;
        if (match_expr(p->a, e->lhs, trial) && match_expr(p->b, e->rhs, trial)) {
          env = std::move(trial);
          return true;
        }
      }
      if (commutative(p->bop)) {
        Env trial = env;
        if (match_expr(p->a, e->rhs, trial) && match_expr(p->b, e->lhs, trial)) {
          env = std::move(trial);
          return true;
        }
      }
      return false;
    }

    case PatKind::kUn:
      return e->kind == ExprKind::kUn && e->uop == p->uop && match_expr(p->a, e->lhs, env);

    case PatKind::kTransform: {
      Env trial = env;
      TransformWalk walk{*p, trial};
      if (!walk.walk(e)) return false;
      if (walk.base_leaves < 1) return false;
      if (walk.ops < 1) return false;
      if (p->require_const_leaf && walk.const_leaves < 1) return false;
      env = std::move(trial);
      return true;
    }
  }
  return false;
}

std::string to_string(const PatPtr& p) {
  if (!p) return "null";
  auto with_var = [&p](std::string s) {
    if (!p->var.empty()) s += ":" + p->var;
    return s;
  };
  switch (p->kind) {
    case PatKind::kAny: return with_var("*");
    case PatKind::kConst: return with_var(p->require_nonzero ? "const!0" : "const");
    case PatKind::kFixedConst: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "0x%x", p->fixed);
      return buf;
    }
    case PatKind::kLoad: return "load(" + to_string(p->a) + ")";
    case PatKind::kBin:
      return std::string(ir::binop_name(p->bop)) + "(" + to_string(p->a) + ", " +
             to_string(p->b) + ")";
    case PatKind::kUn:
      return std::string(p->uop == ir::UnOp::kNot ? "not" : "neg") + "(" + to_string(p->a) +
             ")";
    case PatKind::kTransform: {
      std::string ops;
      for (auto op : p->allowed) {
        if (!ops.empty()) ops += "|";
        ops += ir::binop_name(op);
      }
      if (p->allow_not) ops += "|not";
      return "transform<" + ops + ">(" + to_string(p->base) + ")";
    }
  }
  return "?";
}

}  // namespace senids::semantic
