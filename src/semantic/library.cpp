#include "semantic/library.hpp"

namespace senids::semantic {

using ir::BinOp;

Template tmpl_xor_decrypt_loop() {
  // mem[A] := mem[A] xor K ; A-register += c ; conditional back-edge.
  Template t;
  t.name = "xor-decrypt-loop";
  t.threat = ThreatClass::kDecryptionLoop;
  t.note = "Figure 2/6 xor decryption template";
  t.stmts.push_back(
      st_decode_store(p_any("A"), p_bin(BinOp::kXor, p_load(p_any("A")), p_const("K"))));
  t.stmts.push_back(st_advance("A"));
  t.stmts.push_back(st_branch_back());
  return t;
}

Template tmpl_add_decrypt_loop() {
  // Additive ciphers: sub normalizes to add of the negated constant, so
  // one template covers both directions.
  Template t;
  t.name = "add-decrypt-loop";
  t.threat = ThreatClass::kDecryptionLoop;
  t.note = "equivalent-instruction decoder variant (add/sub key)";
  t.stmts.push_back(
      st_decode_store(p_any("A"), p_bin(BinOp::kAdd, p_load(p_any("A")), p_const("K"))));
  t.stmts.push_back(st_advance("A"));
  t.stmts.push_back(st_branch_back());
  return t;
}

Template tmpl_ror_decrypt_loop() {
  // Rotation ciphers (extension beyond the paper's template set).
  Template t;
  t.name = "ror-decrypt-loop";
  t.threat = ThreatClass::kDecryptionLoop;
  t.note = "rotate-key decoder (future-work extension)";
  t.stmts.push_back(st_decode_store(
      p_any("A"),
      p_transform(p_load(p_any("A")), {BinOp::kRol, BinOp::kRor}, /*allow_not=*/false)));
  t.stmts.push_back(st_advance("A"));
  t.stmts.push_back(st_branch_back());
  return t;
}

Template tmpl_admmutate_alt_decoder() {
  // "a decoding scheme involving a sequence of mov, or, and, and not
  // instructions that perform operations on a single memory location and
  // register pair" — Section 5.2. The value written back is any
  // or/and/not combination of the loaded byte and constants.
  Template t;
  t.name = "admmutate-alt-decoder";
  t.threat = ThreatClass::kDecryptionLoop;
  t.note = "Figure 7 alternate ADMmutate decryption loop";
  t.stmts.push_back(st_decode_store(
      p_any("A"),
      p_transform(p_load(p_any("A")), {BinOp::kOr, BinOp::kAnd}, /*allow_not=*/true)));
  t.stmts.push_back(st_advance("A"));
  t.stmts.push_back(st_branch_back());
  return t;
}

Template tmpl_shell_spawn_pushed_string() {
  // The classic stack-built "/bin…sh" construction followed by
  // execve(11). Only the "/bin" dword is demanded: push-order differs
  // between push-built ("//sh" first, stack grows down) and store-built
  // ("/bin" first) shellcode, and the statement list is order-sensitive.
  Template t;
  t.name = "shell-spawn-pushed-string";
  t.threat = ThreatClass::kShellSpawn;
  t.note = "Figure 6 shell-spawning template (stack-built path)";
  t.stmts.push_back(st_mem_write(p_any(), p_fixed(0x6e69622f)));  // "/bin"
  t.stmts.push_back(st_syscall(0x0b));                            // execve
  return t;
}

Template tmpl_shell_spawn_embedded_string() {
  // jmp/call/pop shellcode keeps the path as data; the lifter resolves
  // the popped return address to a constant buffer offset, so the matcher
  // can read the string straight out of the frame.
  Template t;
  t.name = "shell-spawn-embedded-string";
  t.threat = ThreatClass::kShellSpawn;
  t.note = "Figure 6 shell-spawning template (embedded path)";
  t.stmts.push_back(st_syscall_str(0x0b, "/bin"));
  return t;
}

Template tmpl_port_bind_shell() {
  // socketcall(SYS_SOCKET), (SYS_BIND), (SYS_LISTEN), (SYS_ACCEPT):
  // the paper's "extension" that flags shells bound to a separate port.
  Template t;
  t.name = "port-bind-shell";
  t.threat = ThreatClass::kPortBindShell;
  t.note = "Figure 6 extension: shell bound to a network port";
  t.stmts.push_back(st_socketcall(1));
  t.stmts.push_back(st_socketcall(2));
  t.stmts.push_back(st_socketcall(4));
  t.stmts.push_back(st_socketcall(5));
  return t;
}

Template tmpl_reverse_shell() {
  // socketcall(SYS_SOCKET) then socketcall(SYS_CONNECT): the connect-back
  // counterpart of the port binder (extension family; listed by the
  // paper's future work as "additional families").
  Template t;
  t.name = "reverse-shell";
  t.threat = ThreatClass::kReverseShell;
  t.note = "connect-back shell (extension)";
  t.stmts.push_back(st_socketcall(1));
  t.stmts.push_back(st_socketcall(3));
  t.stmts.push_back(st_syscall(0x0b));
  return t;
}

Template tmpl_code_red_ii() {
  // The decoded CRII vector pushes the fixed trampoline address
  // 0x7801cbd3 (call ebx inside msvcrt) — the invariant memory
  // addressing the paper's Section 5.3 template keys on.
  Template t;
  t.name = "code-red-ii-vector";
  t.threat = ThreatClass::kCodeRedII;
  t.note = "Code Red II initial exploitation vector (Table 3)";
  t.stmts.push_back(st_mem_write(p_any(), p_fixed(0x7801cbd3)));
  return t;
}

// ----------------------------------------------------- x86-64 templates
// Same behaviors under the Linux x86-64 calling convention: `syscall`
// instead of int 0x80, direct socket syscalls instead of socketcall, and
// the path pointer in rdi. The out-of-range event vector (0x100) keeps
// these templates inert on 32-bit traces.

Template tmpl_shell_spawn_stack_64() {
  // mov rbx, 0x68732f2f6e69622f ; push rbx ; ... ; execve(59). The store
  // event carries the low dword ("/bin") of the pushed immediate.
  Template t;
  t.name = "shell-spawn-stack-64";
  t.arch = "x86_64";
  t.threat = ThreatClass::kShellSpawn;
  t.note = "x86-64 shell spawn, stack-built path";
  t.stmts.push_back(st_mem_write(p_any(), p_fixed(0x6e69622f)));  // "/bin"
  t.stmts.push_back(st_syscall64(59));                            // execve
  return t;
}

Template tmpl_shell_spawn_embedded_64() {
  // call/pop or RIP-relative GetPC with the path embedded in the frame.
  Template t;
  t.name = "shell-spawn-embedded-64";
  t.arch = "x86_64";
  t.threat = ThreatClass::kShellSpawn;
  t.note = "x86-64 shell spawn, embedded path";
  t.stmts.push_back(st_syscall64_str(59, "/bin"));
  return t;
}

Template tmpl_port_bind_shell_64() {
  // socket(41), bind(49), listen(50), accept(43): the direct-syscall
  // equivalent of the socketcall sequence.
  Template t;
  t.name = "port-bind-shell-64";
  t.arch = "x86_64";
  t.threat = ThreatClass::kPortBindShell;
  t.note = "x86-64 shell bound to a network port";
  t.stmts.push_back(st_syscall64(41));
  t.stmts.push_back(st_syscall64(49));
  t.stmts.push_back(st_syscall64(50));
  t.stmts.push_back(st_syscall64(43));
  return t;
}

Template tmpl_reverse_shell_64() {
  // socket(41), connect(42), then execve(59) for the spawned shell.
  Template t;
  t.name = "reverse-shell-64";
  t.arch = "x86_64";
  t.threat = ThreatClass::kReverseShell;
  t.note = "x86-64 connect-back shell";
  t.stmts.push_back(st_syscall64(41));
  t.stmts.push_back(st_syscall64(42));
  t.stmts.push_back(st_syscall64(59));
  return t;
}

std::vector<Template> make_xor_only_library() {
  return {tmpl_xor_decrypt_loop()};
}

std::vector<Template> make_decoder_library() {
  return {tmpl_xor_decrypt_loop(), tmpl_add_decrypt_loop(),
          tmpl_admmutate_alt_decoder()};
}

std::vector<Template> make_standard_library() {
  return {tmpl_xor_decrypt_loop(),
          tmpl_add_decrypt_loop(),
          tmpl_admmutate_alt_decoder(),
          tmpl_shell_spawn_pushed_string(),
          tmpl_shell_spawn_embedded_string(),
          tmpl_port_bind_shell(),
          tmpl_reverse_shell(),
          tmpl_code_red_ii(),
          tmpl_shell_spawn_stack_64(),
          tmpl_shell_spawn_embedded_64(),
          tmpl_port_bind_shell_64(),
          tmpl_reverse_shell_64()};
}

std::vector<Template> make_extended_library() {
  auto lib = make_standard_library();
  lib.push_back(tmpl_ror_decrypt_loop());
  return lib;
}

}  // namespace senids::semantic
