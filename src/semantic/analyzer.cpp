#include "semantic/analyzer.hpp"

#include <algorithm>
#include <unordered_set>

#include "ir/lifter.hpp"
#include "x86/scan.hpp"

namespace senids::semantic {

SemanticAnalyzer::SemanticAnalyzer(std::vector<Template> templates, Options options)
    : templates_(std::move(templates)), options_(options) {}

std::vector<Detection> SemanticAnalyzer::analyze(util::ByteView frame,
                                                 AnalyzerStats* stats) const {
  std::vector<Detection> detections;
  if (frame.empty()) return detections;
  if (stats) ++stats->frames;

  // 1. Candidate entry points: starts of maximal decode runs, plus the
  //    targets of backward branches inside them (loop heads — needed when
  //    a run begins inside an already-unrolled loop body).
  std::vector<std::size_t> entries;
  auto runs = x86::find_code_runs(frame, options_.min_run_insns);
  if (stats) stats->candidate_runs += runs.size();
  // Long decode runs first: real code (decoders, shellcode bodies) forms
  // long coherent runs, while text/noise fragments into thousands of
  // short ones. Without this ordering a large frame can exhaust the
  // entry budget on noise before reaching the payload.
  std::stable_sort(runs.begin(), runs.end(), [](const x86::CodeRun& a,
                                                const x86::CodeRun& b) {
    return a.insn_count > b.insn_count;
  });
  std::unordered_set<std::size_t> seen;
  auto add_entry = [&](std::size_t off) {
    if (off < frame.size() && seen.insert(off).second &&
        entries.size() < options_.max_entries) {
      entries.push_back(off);
    }
  };
  for (const auto& run : runs) {
    if (entries.size() >= options_.max_entries) break;
    add_entry(run.start);
    for (const auto& insn :
         x86::linear_sweep(frame, run.start, options_.max_trace_insns)) {
      if (auto target = insn.branch_target(); target && *target < insn.offset) {
        add_entry(*target);
      }
      // The byte after a call is the classic GetPC data/payload location;
      // once a decoder has been unrolled (or emulated away) it is also
      // where the real payload's code begins.
      if (insn.mnemonic == x86::Mnemonic::kCall) {
        add_entry(insn.end_offset());
      }
    }
  }

  // 2. Trace + lift + match. Stop trying a template once it has fired on
  //    this frame (one detection per template per frame).
  std::unordered_set<std::string> fired;
  std::size_t lifted_budget = options_.max_total_insns;
  for (std::size_t entry : entries) {
    if (fired.size() == templates_.size()) break;
    if (lifted_budget == 0) break;  // per-frame work cap reached
    auto trace = x86::execution_trace(frame, entry,
                                      std::min(options_.max_trace_insns, lifted_budget));
    if (trace.size() < options_.min_run_insns) continue;
    lifted_budget -= std::min(lifted_budget, trace.size());
    if (stats) {
      ++stats->traces;
      stats->instructions_lifted += trace.size();
    }
    ir::LiftResult lifted = ir::lift(trace);
    LiftedCode code{&trace, &lifted.events, frame};
    for (const Template& t : templates_) {
      if (fired.contains(t.name)) continue;
      if (stats) ++stats->template_matches_tried;
      if (auto m = match_template(t, code)) {
        fired.insert(t.name);
        Detection d;
        d.template_name = t.name;
        d.threat = t.threat;
        d.entry_offset = entry;
        d.match_offset = m->start_offset;
        d.bindings = std::move(m->bindings);
        detections.push_back(std::move(d));
      }
    }
  }
  return detections;
}

}  // namespace senids::semantic
