#include "semantic/analyzer.hpp"

#include <algorithm>
#include <chrono>

#include "ir/lifter.hpp"
#include "obs/metrics.hpp"
#include "arch/arch.hpp"
#include "arch/scan.hpp"

namespace senids::semantic {

namespace {

/// Process-wide analyzer counters, registered once. Sharded increments:
/// every worker thread funnels through here.
struct AnalyzerMetrics {
  obs::Counter& frames;
  obs::Counter& runs;
  obs::Counter& traces;
  obs::Counter& insns_lifted;
  obs::Counter& matches_tried;
  obs::Counter& entry_budget_exhausted;
  obs::Counter& insn_budget_exhausted;
};

AnalyzerMetrics& analyzer_metrics() {
  auto& r = obs::Registry::instance();
  static AnalyzerMetrics m{
      r.counter("senids_analyzer_frames_total", "Frames run through the semantic analyzer"),
      r.counter("senids_analyzer_runs_total", "Candidate decode runs found"),
      r.counter("senids_analyzer_traces_total", "Execution traces lifted to IR"),
      r.counter("senids_analyzer_insns_lifted_total", "Instructions lifted to IR"),
      r.counter("senids_analyzer_matches_tried_total", "Template match attempts"),
      r.counter("senids_analyzer_entry_budget_exhausted_total",
                "Frames that filled the candidate-entry budget"),
      r.counter("senids_analyzer_insn_budget_exhausted_total",
                "Frames that burned the per-frame instruction budget"),
  };
  return m;
}

/// Accumulating stopwatch that reads the clock only while metrics are on.
class StageClock {
 public:
  explicit StageClock(bool active) : active_(active) {}
  void start() noexcept {
    if (active_) t0_ = std::chrono::steady_clock::now();
  }
  void stop(double& into) noexcept {
    if (active_) {
      into += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
    }
  }

 private:
  bool active_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace

SemanticAnalyzer::SemanticAnalyzer(std::vector<Template> templates, Options options)
    : templates_(std::make_shared<const std::vector<Template>>(std::move(templates))),
      options_(std::move(options)) {}

SemanticAnalyzer::SemanticAnalyzer(std::shared_ptr<const std::vector<Template>> templates,
                                   Options options)
    : templates_(std::move(templates)), options_(std::move(options)) {}

std::vector<Detection> SemanticAnalyzer::analyze(util::ByteView frame,
                                                 AnalyzerStats* stats) const {
  AnalyzerScratch scratch;
  return analyze(frame, stats, scratch);
}

std::vector<Detection> SemanticAnalyzer::analyze(util::ByteView frame, AnalyzerStats* stats,
                                                 AnalyzerScratch& scratch) const {
  const std::vector<Template>& templates = *templates_;
  const arch::Arch& isa = options_.arch ? *options_.arch : arch::Arch::x86_32();
  std::vector<Detection> detections;
  if (frame.empty()) return detections;
  AnalyzerMetrics& metrics = analyzer_metrics();
  metrics.frames.add();
  if (stats) ++stats->frames;
  StageClock clock(obs::metrics_enabled());

  // 1. Candidate entry points: starts of maximal decode runs, plus the
  //    targets of backward branches inside them (loop heads — needed when
  //    a run begins inside an already-unrolled loop body).
  clock.start();
  std::vector<std::size_t>& entries = scratch.entries;
  entries.clear();
  std::vector<arch::CodeRun>& runs = scratch.runs;
  isa.find_code_runs(frame, options_.min_run_insns, runs, scratch.scan);
  metrics.runs.add(runs.size());
  if (stats) stats->candidate_runs += runs.size();
  // Long decode runs first: real code (decoders, shellcode bodies) forms
  // long coherent runs, while text/noise fragments into thousands of
  // short ones. Without this ordering a large frame can exhaust the
  // entry budget on noise before reaching the payload.
  std::stable_sort(runs.begin(), runs.end(), [](const arch::CodeRun& a,
                                                const arch::CodeRun& b) {
    return a.insn_count > b.insn_count;
  });
  std::vector<char>& seen = scratch.entry_seen;
  seen.assign(frame.size(), 0);
  bool entry_budget_hit = false;
  auto add_entry = [&](std::size_t off) {
    if (off >= frame.size() || seen[off]) return;
    seen[off] = 1;
    if (entries.size() >= options_.max_entries) {
      entry_budget_hit = true;
      return;
    }
    entries.push_back(off);
  };
  for (const auto& run : runs) {
    if (entries.size() >= options_.max_entries) break;
    add_entry(run.start);
    isa.linear_sweep(frame, run.start, options_.max_trace_insns, scratch.entry_sweep);
    for (const auto& insn : scratch.entry_sweep) {
      if (auto target = insn.branch_target(); target && *target < insn.offset) {
        add_entry(*target);
      }
      // The byte after a call is the classic GetPC data/payload location;
      // once a decoder has been unrolled (or emulated away) it is also
      // where the real payload's code begins.
      if (insn.mnemonic == arch::Mnemonic::kCall) {
        add_entry(insn.end_offset());
      }
    }
  }
  double disasm_seconds = 0.0;
  clock.stop(disasm_seconds);

  // 2. Trace + lift + match. Stop trying a template once it has fired on
  //    this frame (one detection per template per frame).
  double lift_seconds = 0.0;
  double match_seconds = 0.0;
  bool insn_budget_hit = false;
  std::vector<char>& fired = scratch.fired;
  fired.assign(templates.size(), 0);
  std::size_t fired_count = 0;
  std::size_t lifted_budget = options_.max_total_insns;
  std::vector<arch::Instruction>& trace = scratch.trace;
  ir::LiftResult& lifted = scratch.lifted;
  for (std::size_t entry : entries) {
    if (fired_count == templates.size()) break;
    if (lifted_budget == 0) {  // per-frame work cap reached
      insn_budget_hit = true;
      break;
    }
    clock.start();
    isa.execution_trace(frame, entry, std::min(options_.max_trace_insns, lifted_budget),
                        trace, scratch.scan);
    clock.stop(disasm_seconds);
    if (trace.size() < options_.min_run_insns) continue;
    lifted_budget -= std::min(lifted_budget, trace.size());
    metrics.traces.add();
    metrics.insns_lifted.add(trace.size());
    if (stats) {
      ++stats->traces;
      stats->instructions_lifted += trace.size();
    }
    clock.start();
    ir::lift(trace, lifted);
    clock.stop(lift_seconds);
    if (options_.post_lift_hook) options_.post_lift_hook(trace, lifted);
    LiftedCode code{&trace, &lifted.events, frame};
    clock.start();
    for (std::size_t ti = 0; ti < templates.size(); ++ti) {
      if (fired[ti]) continue;
      const Template& t = templates[ti];
      metrics.matches_tried.add();
      if (stats) ++stats->template_matches_tried;
      if (auto m = match_template(t, code)) {
        fired[ti] = 1;
        ++fired_count;
        Detection d;
        d.template_name = t.name;
        d.threat = t.threat;
        d.entry_offset = entry;
        d.match_offset = m->start_offset;
        d.bindings = std::move(m->bindings);
        detections.push_back(std::move(d));
      }
    }
    clock.stop(match_seconds);
  }

  if (entry_budget_hit) {
    metrics.entry_budget_exhausted.add();
    if (stats) ++stats->entry_budget_exhausted;
  }
  if (insn_budget_hit) {
    metrics.insn_budget_exhausted.add();
    if (stats) ++stats->insn_budget_exhausted;
  }
  if (stats) {
    stats->disasm_seconds += disasm_seconds;
    stats->lift_seconds += lift_seconds;
    stats->match_seconds += match_seconds;
  }
  return detections;
}

}  // namespace senids::semantic
