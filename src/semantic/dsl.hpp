// Text format for authoring templates, so analysts can add detections
// without recompiling (the paper's "we intend to classify more exploit
// behaviors so that we can generate additional useful templates").
//
//   # decryption loop over any pointer register, any nonzero key
//   template xor-decrypt : decryption-loop {
//     store *A = xor(load(*A), K)
//     advance A
//     loopback
//   }
//
//   template bind-shell : port-bind-shell {
//     syscall 0x66 sub 1
//     syscall 0x66 sub 2
//     syscall 0x66 sub 4
//   }
//
// Expression patterns:
//   *            any expression              *A    any, bound to A
//   K            constant (nonzero), bound   0x2f  this exact constant
//   load(p)      memory load at address p
//   xor(p, q)    binary op: add sub xor or and shl shr sar rol ror mul
//   not(p) neg(p)
//   transform(p; or, and, not)   any tree of the listed ops over p+consts
//
// Statements:
//   store [byte|word|dword] ADDR = VALUE
//   decode ADDR = VALUE        byte-wide store whose value must be an
//                              invertible function of the loaded byte
//                              (the hardened decoder-loop form)
//   regwrite VALUE | advance VAR | loopback
//   syscall N [sub N] [path "S"]
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "semantic/template.hpp"

namespace senids::semantic {

struct ParseError {
  std::size_t line = 0;
  std::string message;
};

/// Parse a DSL document containing zero or more templates.
std::variant<std::vector<Template>, ParseError> parse_templates(std::string_view text);

}  // namespace senids::semantic
