#include "obs/pipeline.hpp"

namespace senids::obs {

namespace {

constexpr std::array<std::string_view, kStageCount> kStageNames = {
    "classify", "reassemble", "triage", "extract", "disasm", "lift", "match", "emulate",
};

PipelineMetrics register_all() {
  Registry& r = Registry::instance();
  PipelineMetrics m;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    m.stage_seconds[i] =
        &r.histogram("senids_stage_seconds", "Per-stage pipeline latency in seconds",
                     "stage", kStageNames[i]);
  }
  m.packets = &r.counter("senids_packets_total", "Captured frames fed to stage (a)");
  m.suspicious_packets =
      &r.counter("senids_suspicious_packets_total", "Packets the classifier flagged");
  m.units = &r.counter("senids_units_total",
                       "Analysis units (payloads/streams) entering stage (b)");
  m.frames =
      &r.counter("senids_frames_total", "Binary frames extracted from analysis units");
  m.bytes_analyzed =
      &r.counter("senids_bytes_analyzed_total", "Frame bytes reaching the disassembler");
  m.alerts = &r.counter("senids_alerts_total", "Alerts raised by all stages");

  m.queue_depth = &r.gauge("senids_queue_depth", "Analysis units waiting in the handoff queue");
  m.queue_depth_peak = &r.gauge("senids_unit_queue_depth_peak",
                                "High watermark of the handoff queue depth");
  m.queue_capacity = &r.gauge("senids_unit_queue_capacity",
                              "Configured handoff queue capacity (max_queued_units)");
  m.queue_bytes = &r.gauge("senids_queue_bytes", "Payload bytes waiting in the handoff queue");
  m.queue_pushed = &r.counter("senids_queue_pushed_total", "Units admitted to the handoff queue");
  m.queue_backpressure_waits = &r.counter(
      "senids_queue_backpressure_waits_total",
      "Producer pushes that blocked on a full queue or exhausted byte budget");
  m.queue_backpressure_wait_seconds =
      &r.histogram("senids_queue_backpressure_wait_seconds",
                   "Time the producer spent blocked per backpressured push");

  m.flow_table_flows = &r.gauge("senids_flow_table_flows", "Live flows in the flow table");
  m.flow_table_max_flows = &r.gauge("senids_flow_table_max_flows",
                                    "Configured live-flow cap (0 = uncapped)");
  m.flows_created = &r.counter("senids_flows_created_total", "Flows admitted to the flow table");
  m.flows_evicted_idle =
      &r.counter("senids_flows_evicted_idle_total", "Flows flushed by the idle timeout");
  m.flows_evicted_overflow = &r.counter("senids_flows_evicted_overflow_total",
                                        "Flows flushed to enforce the live-flow cap");
  m.streams_truncated = &r.counter("senids_streams_truncated_total",
                                   "Flows whose assembled stream hit max_stream_bytes");

  m.unit_seconds = &r.histogram("senids_unit_seconds",
                                "Whole-unit analysis latency (stages (b)-(e))");

  m.cache_hits = &r.counter("senids_verdict_cache_hits_total",
                            "Units served by replaying a cached verdict");
  m.cache_misses = &r.counter("senids_verdict_cache_misses_total",
                              "Cache lookups that fell through to full analysis");
  m.cache_bypass = &r.counter("senids_verdict_cache_bypass_total",
                              "Units that skipped the cache (over the unit size cap)");
  m.cache_insertions = &r.counter("senids_verdict_cache_insertions_total",
                                  "Verdicts admitted to the cache");
  m.cache_evictions = &r.counter("senids_verdict_cache_evictions_total",
                                 "Entries evicted to enforce the byte budget");
  m.cache_bytes_saved = &r.counter(
      "senids_verdict_cache_bytes_saved_total",
      "Frame bytes whose disassembly/lift/match was skipped via cache hits");
  m.cache_entries = &r.gauge("senids_verdict_cache_entries", "Live verdict-cache entries");
  m.cache_bytes =
      &r.gauge("senids_verdict_cache_bytes", "Resident bytes charged to the cache budget");

  m.defrag_dropped = &r.counter(
      "senids_defrag_dropped_total",
      "Pending datagrams dropped by the defragmenter to enforce its byte cap");

  m.triage_screened =
      &r.counter("senids_triage_screened_total", "Analysis units screened by stage-0 triage");
  m.triage_escalated = &r.counter("senids_triage_escalated_total",
                                  "Screened units escalated to the full pipeline");
  m.triage_rejected = &r.counter("senids_triage_rejected_total",
                                 "Screened units rejected without full analysis");
  m.triage_rejected_bytes =
      &r.counter("senids_triage_rejected_bytes_total",
                 "Payload bytes of rejected units (full-pipeline work avoided)");
  return m;
}

}  // namespace

ShardMetrics shard_metrics(std::size_t shard_index) {
  Registry& r = Registry::instance();
  const std::string label = std::to_string(shard_index);
  ShardMetrics m;
  m.queue_depth = &r.gauge("senids_shard_packet_queue_depth",
                           "Frames waiting in a shard's dispatch queue", "shard", label);
  m.queue_depth_peak =
      &r.gauge("senids_shard_packet_queue_depth_peak",
               "High watermark of a shard's dispatch queue depth", "shard", label);
  m.packets = &r.counter("senids_shard_packets_total", "Frames classified per shard",
                         "shard", label);
  m.units = &r.counter("senids_shard_units_total", "Analysis units emitted per shard",
                       "shard", label);
  m.flows = &r.gauge("senids_shard_flows", "Live flows per shard", "shard", label);
  return m;
}

Gauge& shard_queue_capacity_gauge() {
  return Registry::instance().gauge(
      "senids_shard_packet_queue_capacity",
      "Configured per-shard dispatch queue capacity (0 = not sharded)");
}

std::string_view stage_name(Stage stage) noexcept {
  return kStageNames[static_cast<std::size_t>(stage)];
}

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics metrics = register_all();
  return metrics;
}

}  // namespace senids::obs
