#include "obs/pipeline.hpp"

namespace senids::obs {

namespace {

constexpr std::array<std::string_view, kStageCount> kStageNames = {
    "classify", "reassemble", "extract", "disasm", "lift", "match", "emulate",
};

PipelineMetrics register_all() {
  Registry& r = Registry::instance();
  PipelineMetrics m;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    m.stage_seconds[i] =
        &r.histogram("senids_stage_seconds", "Per-stage pipeline latency in seconds",
                     "stage", kStageNames[i]);
  }
  m.packets = &r.counter("senids_packets_total", "Captured frames fed to stage (a)");
  m.suspicious_packets =
      &r.counter("senids_suspicious_packets_total", "Packets the classifier flagged");
  m.units = &r.counter("senids_units_total",
                       "Analysis units (payloads/streams) entering stage (b)");
  m.frames =
      &r.counter("senids_frames_total", "Binary frames extracted from analysis units");
  m.bytes_analyzed =
      &r.counter("senids_bytes_analyzed_total", "Frame bytes reaching the disassembler");
  m.alerts = &r.counter("senids_alerts_total", "Alerts raised by all stages");

  m.queue_depth = &r.gauge("senids_queue_depth", "Analysis units waiting in the handoff queue");
  m.queue_bytes = &r.gauge("senids_queue_bytes", "Payload bytes waiting in the handoff queue");
  m.queue_pushed = &r.counter("senids_queue_pushed_total", "Units admitted to the handoff queue");
  m.queue_backpressure_waits = &r.counter(
      "senids_queue_backpressure_waits_total",
      "Producer pushes that blocked on a full queue or exhausted byte budget");
  m.queue_backpressure_wait_seconds =
      &r.histogram("senids_queue_backpressure_wait_seconds",
                   "Time the producer spent blocked per backpressured push");

  m.flow_table_flows = &r.gauge("senids_flow_table_flows", "Live flows in the flow table");
  m.flows_created = &r.counter("senids_flows_created_total", "Flows admitted to the flow table");
  m.flows_evicted_idle =
      &r.counter("senids_flows_evicted_idle_total", "Flows flushed by the idle timeout");
  m.flows_evicted_overflow = &r.counter("senids_flows_evicted_overflow_total",
                                        "Flows flushed to enforce the live-flow cap");
  m.streams_truncated = &r.counter("senids_streams_truncated_total",
                                   "Flows whose assembled stream hit max_stream_bytes");
  return m;
}

}  // namespace

std::string_view stage_name(Stage stage) noexcept {
  return kStageNames[static_cast<std::size_t>(stage)];
}

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics metrics = register_all();
  return metrics;
}

}  // namespace senids::obs
