#include "obs/workers.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "util/sync.hpp"

namespace senids::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

}  // namespace

void WorkerSlot::begin_run() noexcept {
#if !defined(SENIDS_NO_OBS)
  const std::uint64_t now = WorkerTable::instance().now_ns();
  active_.fetch_add(1, std::memory_order_relaxed);
  run_start_ns_.store(now, std::memory_order_relaxed);
  run_end_ns_.store(0, std::memory_order_relaxed);
  heartbeat_ns_.store(now, std::memory_order_relaxed);
#endif
}

void WorkerSlot::end_run() noexcept {
#if !defined(SENIDS_NO_OBS)
  run_end_ns_.store(WorkerTable::instance().now_ns(), std::memory_order_relaxed);
  active_.fetch_sub(1, std::memory_order_relaxed);
#endif
}

void WorkerSlot::heartbeat() noexcept {
#if !defined(SENIDS_NO_OBS)
  if (!metrics_enabled()) return;
  heartbeat_ns_.store(WorkerTable::instance().now_ns(), std::memory_order_relaxed);
#endif
}

struct WorkerTable::Impl {
  const SteadyClock::time_point epoch = SteadyClock::now();
  mutable util::Mutex mu{"WorkerTable"};
  // Node stability keeps WorkerSlot& handles valid forever. The slots
  // themselves are all-atomic (mutated lock-free by their owner thread);
  // mu guards only the registration map.
  std::map<std::pair<std::string, std::size_t>, std::unique_ptr<WorkerSlot>> slots
      GUARDED_BY(mu);
};

WorkerTable::WorkerTable() : impl_(new Impl) {}

WorkerTable& WorkerTable::instance() {
  static WorkerTable table;
  return table;
}

std::uint64_t WorkerTable::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           impl_->epoch)
          .count());
}

WorkerSlot& WorkerTable::slot(std::string_view kind, std::size_t index) {
  util::MutexLock lock(impl_->mu);
  auto key = std::make_pair(std::string(kind), index);
  auto it = impl_->slots.find(key);
  if (it == impl_->slots.end()) {
    auto slot = std::unique_ptr<WorkerSlot>(new WorkerSlot());
    slot->kind_ = key.first;
    slot->index_ = index;
    it = impl_->slots.emplace(std::move(key), std::move(slot)).first;
  }
  return *it->second;
}

std::vector<WorkerSlot::Snapshot> WorkerTable::snapshot() const {
  const std::uint64_t now = now_ns();
  util::MutexLock lock(impl_->mu);
  std::vector<WorkerSlot::Snapshot> out;
  out.reserve(impl_->slots.size());
  for (const auto& [key, slot] : impl_->slots) {
    WorkerSlot::Snapshot s;
    s.kind = slot->kind_;
    s.index = slot->index_;
    s.active = slot->active_.load(std::memory_order_relaxed) > 0;
    s.busy_seconds =
        static_cast<double>(slot->busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
    s.idle_seconds =
        static_cast<double>(slot->idle_ns_.load(std::memory_order_relaxed)) * 1e-9;
    s.units = slot->units_.load(std::memory_order_relaxed);
    const std::uint64_t hb = slot->heartbeat_ns_.load(std::memory_order_relaxed);
    s.seconds_since_heartbeat =
        hb == 0 ? -1.0 : static_cast<double>(now - std::min(hb, now)) * 1e-9;
    const std::uint64_t start = slot->run_start_ns_.load(std::memory_order_relaxed);
    const std::uint64_t end = slot->run_end_ns_.load(std::memory_order_relaxed);
    if (start != 0) {
      const std::uint64_t until = s.active || end < start ? now : end;
      s.run_seconds = static_cast<double>(until - std::min(start, until)) * 1e-9;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void WorkerTable::reset() {
  util::MutexLock lock(impl_->mu);
  for (auto& [key, slot] : impl_->slots) {
    slot->busy_ns_.store(0, std::memory_order_relaxed);
    slot->idle_ns_.store(0, std::memory_order_relaxed);
    slot->units_.store(0, std::memory_order_relaxed);
    slot->heartbeat_ns_.store(0, std::memory_order_relaxed);
    slot->run_start_ns_.store(0, std::memory_order_relaxed);
    slot->run_end_ns_.store(0, std::memory_order_relaxed);
    slot->active_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace senids::obs
