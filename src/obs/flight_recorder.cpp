#include "obs/flight_recorder.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "util/sync.hpp"

namespace senids::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_format(std::string& out, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list measured;
  va_copy(measured, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, measured);
  va_end(measured);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt, args);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

constexpr std::size_t kWords = 8;

std::uint16_t fold16(std::uint64_t w) noexcept {
  w ^= w >> 32;
  w ^= w >> 16;
  return static_cast<std::uint16_t>(w & 0xffff);
}

/// Pack a record into 8 words. w7 carries a 16-bit fold checksum over
/// the other words plus its own payload bits, so a reader can reject a
/// torn slot even if the seqlock validation races.
std::array<std::uint64_t, kWords> pack(const UnitRecord& r) noexcept {
  std::array<std::uint64_t, kWords> w{};
  w[0] = r.unit_id;
  w[1] = r.ts_us;
  w[2] = std::uint64_t{r.src} | (std::uint64_t{r.payload_bytes} << 32);
  w[3] = std::uint64_t{r.frames} | (std::uint64_t{r.alerts} << 32);
  w[4] = std::uint64_t{r.extract_us} | (std::uint64_t{r.disasm_us} << 32);
  w[5] = std::uint64_t{r.lift_us} | (std::uint64_t{r.match_us} << 32);
  w[6] = std::uint64_t{r.emulate_us} | (std::uint64_t{r.total_us} << 32);
  w[7] = std::uint64_t{r.worker} |
         (std::uint64_t{static_cast<std::uint8_t>(r.cache)} << 32);
  std::uint16_t sum = 0;
  for (std::size_t i = 0; i < kWords; ++i) sum ^= fold16(w[i]);
  sum ^= 0xa5a5;  // an all-zero slot must not look like a valid record
  w[7] |= std::uint64_t{sum} << 40;
  return w;
}

bool unpack(const std::array<std::uint64_t, kWords>& w, UnitRecord& r) noexcept {
  const std::uint16_t stored = static_cast<std::uint16_t>(w[7] >> 40);
  std::uint16_t sum = 0;
  for (std::size_t i = 0; i < kWords - 1; ++i) sum ^= fold16(w[i]);
  sum ^= fold16(w[7] & ((std::uint64_t{1} << 40) - 1));
  sum ^= 0xa5a5;
  if (sum != stored) return false;
  r.unit_id = w[0];
  r.ts_us = w[1];
  r.src = static_cast<std::uint32_t>(w[2]);
  r.payload_bytes = static_cast<std::uint32_t>(w[2] >> 32);
  r.frames = static_cast<std::uint32_t>(w[3]);
  r.alerts = static_cast<std::uint32_t>(w[3] >> 32);
  r.extract_us = static_cast<std::uint32_t>(w[4]);
  r.disasm_us = static_cast<std::uint32_t>(w[4] >> 32);
  r.lift_us = static_cast<std::uint32_t>(w[5]);
  r.match_us = static_cast<std::uint32_t>(w[5] >> 32);
  r.emulate_us = static_cast<std::uint32_t>(w[6]);
  r.total_us = static_cast<std::uint32_t>(w[6] >> 32);
  r.worker = static_cast<std::uint32_t>(w[7]);
  r.cache = static_cast<CacheDisposition>((w[7] >> 32) & 0xff);
  return true;
}

/// One seqlock-guarded slot. seq == 0 means never written; odd means a
/// write is in flight; even > 0 means stable. All accesses are atomic,
/// so racing reads are well-defined; torn ones fail seq or checksum.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::array<std::atomic<std::uint64_t>, kWords> w{};

  void write(const UnitRecord& r) noexcept {
    const auto packed = pack(r);
    const std::uint64_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < kWords; ++i) {
      w[i].store(packed[i], std::memory_order_relaxed);
    }
    seq.store(s + 2, std::memory_order_release);
  }

  [[nodiscard]] bool read(UnitRecord& r) const noexcept {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t s1 = seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1)) return false;  // unwritten or mid-write
      std::array<std::uint64_t, kWords> copy{};
      for (std::size_t i = 0; i < kWords; ++i) {
        copy[i] = w[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t s2 = seq.load(std::memory_order_relaxed);
      if (s1 == s2 && unpack(copy, r)) return true;
    }
    return false;
  }
};

/// Single-writer ring of Slots plus the writer's private cursor. The
/// head is atomic only so scrapers can read it.
struct Ring {
  explicit Ring(std::size_t n, std::uint32_t idx) : slots(n), index(idx) {}
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};  // next write position (monotonic)
  std::uint32_t index = 0;
  std::uint32_t since_refresh = 0;  // writer-private refresh countdown
};

std::atomic<bool> g_enabled{false};

}  // namespace

std::string_view cache_disposition_name(CacheDisposition d) noexcept {
  switch (d) {
    case CacheDisposition::kHit: return "hit";
    case CacheDisposition::kMiss: return "miss";
    case CacheDisposition::kBypass: return "bypass";
    case CacheDisposition::kNone: break;
  }
  return "none";
}

struct FlightRecorder::Impl {
  const SteadyClock::time_point epoch = SteadyClock::now();
  // Guards the options/rings *structure*, never the record path (writers
  // go through per-thread rings and atomics; collectors copy raw ring
  // pointers out under mu and then read via the seqlock protocol).
  mutable util::Mutex mu{"FlightRecorder"};
  Options options GUARDED_BY(mu);
  std::atomic<std::uint64_t> generation{0};
  std::vector<std::unique_ptr<Ring>> rings GUARDED_BY(mu);
  // Multi-writer slow buffer: slots claimed by fetch_add on slow_head.
  std::vector<std::unique_ptr<Slot>> slow_slots GUARDED_BY(mu);
  std::atomic<std::uint64_t> slow_head{0};
  std::atomic<std::uint64_t> slow_threshold_ns{0};

  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(SteadyClock::now() -
                                                              epoch)
            .count());
  }
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

bool FlightRecorder::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

FlightRecorder::Options FlightRecorder::options() const {
  util::MutexLock lock(impl_->mu);
  return impl_->options;
}

void FlightRecorder::configure(const Options& options) {
  util::MutexLock lock(impl_->mu);
  impl_->options = options;
  impl_->rings.clear();
  impl_->slow_slots.clear();
  const std::size_t slow_n = options.slots ? std::max<std::size_t>(1, options.slow_slots) : 0;
  impl_->slow_slots.reserve(slow_n);
  for (std::size_t i = 0; i < slow_n; ++i) {
    impl_->slow_slots.push_back(std::make_unique<Slot>());
  }
  impl_->slow_head.store(0, std::memory_order_relaxed);
  impl_->slow_threshold_ns.store(
      static_cast<std::uint64_t>(options.slow_floor_seconds * 1e9),
      std::memory_order_relaxed);
  impl_->generation.fetch_add(1, std::memory_order_release);
  g_enabled.store(options.slots > 0, std::memory_order_relaxed);
}

double FlightRecorder::slow_threshold_seconds() const noexcept {
  return static_cast<double>(impl_->slow_threshold_ns.load(std::memory_order_relaxed)) *
         1e-9;
}

void FlightRecorder::refresh_slow_threshold() noexcept {
  double floor_s;
  double mult;
  {
    util::MutexLock lock(impl_->mu);
    floor_s = impl_->options.slow_floor_seconds;
    mult = impl_->options.slow_multiplier;
  }
  const Histogram::Snapshot snap = pipeline_metrics().unit_seconds->snapshot();
  double threshold = floor_s;
  if (snap.count >= 16) {  // too few samples: stick to the floor
    threshold = std::max(floor_s, mult * snap.quantile(0.95));
  }
  impl_->slow_threshold_ns.store(static_cast<std::uint64_t>(threshold * 1e9),
                                 std::memory_order_relaxed);
}

namespace {

/// The calling thread's ring for the current configuration generation.
/// Binding takes the structure mutex once per thread per configure().
struct TlBinding {
  std::uint64_t generation = 0;
  Ring* ring = nullptr;
};

}  // namespace

void FlightRecorder::record(const UnitRecord& rec) noexcept {
#if !defined(SENIDS_NO_OBS)
  if (!enabled() || !metrics_enabled()) return;
  Impl& im = *impl_;
  thread_local TlBinding tl;
  const std::uint64_t gen = im.generation.load(std::memory_order_acquire);
  if (tl.generation != gen || tl.ring == nullptr) {
    util::MutexLock lock(im.mu);
    if (im.options.slots == 0) return;  // raced a disable
    im.rings.push_back(std::make_unique<Ring>(
        im.options.slots, static_cast<std::uint32_t>(im.rings.size())));
    tl.ring = im.rings.back().get();
    tl.generation = im.generation.load(std::memory_order_relaxed);
  }
  Ring& ring = *tl.ring;
  UnitRecord r = rec;
  r.worker = ring.index;
  r.ts_us = im.now_us();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  ring.slots[head % ring.slots.size()].write(r);
  ring.head.store(head + 1, std::memory_order_release);

  if (++ring.since_refresh >= 256) {
    ring.since_refresh = 0;
    refresh_slow_threshold();
  }
  const std::uint64_t threshold_ns =
      im.slow_threshold_ns.load(std::memory_order_relaxed);
  if (std::uint64_t{r.total_us} * 1000 > threshold_ns) {
    // Unguarded-field finding from the thread-safety annotation pass:
    // this branch used to index slow_slots without im.mu, racing a
    // concurrent configure() that swaps the vector out under it. Taking
    // the lock here is fine — only slow outliers (above the rolling p95
    // threshold) ever reach this branch, never the per-unit fast path.
    util::MutexLock lock(im.mu);
    if (!im.slow_slots.empty()) {
      const std::uint64_t slow_head = im.slow_head.fetch_add(1, std::memory_order_relaxed);
      im.slow_slots[slow_head % im.slow_slots.size()]->write(r);
    }
  }
#else
  (void)rec;
#endif
}

std::vector<UnitRecord> FlightRecorder::recent() const {
  std::vector<Ring*> rings;
  {
    util::MutexLock lock(impl_->mu);
    rings.reserve(impl_->rings.size());
    for (const auto& r : impl_->rings) rings.push_back(r.get());
  }
  std::vector<UnitRecord> out;
  for (Ring* ring : rings) {
    const std::size_t n = ring->slots.size();
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t first = head > n ? head - n : 0;
    for (std::uint64_t i = first; i < head; ++i) {
      UnitRecord r;
      if (ring->slots[i % n].read(r)) out.push_back(r);
    }
  }
  return out;
}

std::vector<UnitRecord> FlightRecorder::slow(bool clear) {
  std::vector<Slot*> slots;
  {
    util::MutexLock lock(impl_->mu);
    slots.reserve(impl_->slow_slots.size());
    for (const auto& s : impl_->slow_slots) slots.push_back(s.get());
  }
  std::vector<UnitRecord> out;
  if (slots.empty()) return out;
  const std::uint64_t head = impl_->slow_head.load(std::memory_order_acquire);
  const std::uint64_t n = slots.size();
  const std::uint64_t first = head > n ? head - n : 0;
  for (std::uint64_t i = first; i < head; ++i) {
    UnitRecord r;
    if (slots[i % n]->read(r)) out.push_back(r);
  }
  if (clear) {
    for (Slot* s : slots) s->seq.store(0, std::memory_order_relaxed);
    impl_->slow_head.store(0, std::memory_order_relaxed);
  }
  return out;
}

void FlightRecorder::reset() {
  util::MutexLock lock(impl_->mu);
  // Bump the generation so bound threads re-register; dropping the rings
  // drops their contents.
  impl_->rings.clear();
  for (auto& s : impl_->slow_slots) s->seq.store(0, std::memory_order_relaxed);
  impl_->slow_head.store(0, std::memory_order_relaxed);
  impl_->slow_threshold_ns.store(
      static_cast<std::uint64_t>(impl_->options.slow_floor_seconds * 1e9),
      std::memory_order_relaxed);
  impl_->generation.fetch_add(1, std::memory_order_release);
}

namespace {

void append_record_json(std::string& out, const UnitRecord& r) {
  append_format(
      out,
      "{\"unit_id\": %llu, \"ts_us\": %llu, \"src\": \"%u.%u.%u.%u\", "
      "\"bytes\": %u, \"frames\": %u, \"alerts\": %u, \"worker\": %u, "
      "\"cache\": \"%s\", \"extract_us\": %u, \"disasm_us\": %u, "
      "\"lift_us\": %u, \"match_us\": %u, \"emulate_us\": %u, \"total_us\": %u}",
      static_cast<unsigned long long>(r.unit_id),
      static_cast<unsigned long long>(r.ts_us), (r.src >> 24) & 0xff,
      (r.src >> 16) & 0xff, (r.src >> 8) & 0xff, r.src & 0xff, r.payload_bytes,
      r.frames, r.alerts, r.worker,
      std::string(cache_disposition_name(r.cache)).c_str(), r.extract_us,
      r.disasm_us, r.lift_us, r.match_us, r.emulate_us, r.total_us);
}

}  // namespace

std::string FlightRecorder::json() const {
  std::string out = "{\n";
  Options opts = options();
  append_format(out, "  \"enabled\": %s,\n", enabled() ? "true" : "false");
  append_format(out, "  \"slots\": %zu,\n  \"slow_slots\": %zu,\n", opts.slots,
                opts.slow_slots);
  append_format(out, "  \"slow_threshold_us\": %.3f,\n",
                slow_threshold_seconds() * 1e6);
  out += "  \"recent\": [\n";
  const std::vector<UnitRecord> rec = recent();
  for (std::size_t i = 0; i < rec.size(); ++i) {
    out += "    ";
    append_record_json(out, rec[i]);
    out += i + 1 < rec.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"slow\": [\n";
  // const_cast-free read: slow(false) does not mutate, but is non-const
  // because of the clear option; route through instance().
  const std::vector<UnitRecord> slow_rec = FlightRecorder::instance().slow(false);
  for (std::size_t i = 0; i < slow_rec.size(); ++i) {
    out += "    ";
    append_record_json(out, slow_rec[i]);
    out += i + 1 < slow_rec.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace senids::obs
