#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <memory>

#include "util/sync.hpp"

namespace senids::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_format(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measured;
  va_copy(measured, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, measured);
  va_end(measured);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt, args);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

void append_span_json(std::string& out, const Span& s) {
  append_format(out,
                "{\"name\": \"%s\", \"cat\": \"stage\", \"ph\": \"X\", \"pid\": 1, "
                "\"tid\": %u, \"ts\": %llu, \"dur\": %llu, "
                "\"args\": {\"unit\": %llu, \"bytes\": %llu}}",
                s.name, s.tid, static_cast<unsigned long long>(s.ts_us),
                static_cast<unsigned long long>(s.dur_us),
                static_cast<unsigned long long>(s.unit_id),
                static_cast<unsigned long long>(s.bytes));
}

}  // namespace

struct Tracer::Impl {
  using Clock = std::chrono::steady_clock;

  struct Buffer {
    // Uncontended: one owner thread appends, collectors read. Nested
    // inside Impl::mu by collectors — "Tracer" before "Tracer.buffer"
    // is the one two-level chain in the pipeline's lock hierarchy.
    util::Mutex mu{"Tracer.buffer"};
    std::vector<Span> spans GUARDED_BY(mu);
  };

  mutable util::Mutex mu{"Tracer"};  // guards buffer registration
  std::vector<std::unique_ptr<Buffer>> buffers GUARDED_BY(mu);
  // Annotation-pass finding: epoch used to be a plain time_point read by
  // now_us() on the span hot path while reset() rewrote it under mu — a
  // torn read on a two-word value. Atomic clock ticks keep the hot path
  // lock-free and the reset race well-defined.
  std::atomic<Clock::rep> epoch_ticks{Clock::now().time_since_epoch().count()};
  std::atomic<std::uint64_t> next_unit{1};
  std::atomic<std::uint32_t> next_tid{1};

  Buffer& local_buffer(std::uint32_t* tid_out) {
    // One buffer per (thread, tracer) pair; buffers outlive their thread
    // so spans from joined pool workers survive until export.
    thread_local Buffer* buffer = nullptr;
    thread_local std::uint32_t tid = 0;
    if (!buffer) {
      auto owned = std::make_unique<Buffer>();
      buffer = owned.get();
      tid = next_tid.fetch_add(1, std::memory_order_relaxed);
      util::MutexLock lock(mu);
      buffers.push_back(std::move(owned));
    }
    *tid_out = tid;
    return *buffer;
  }
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void Tracer::set_enabled(bool enabled) noexcept {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_us() const noexcept {
  const auto since_epoch =
      Impl::Clock::now().time_since_epoch() -
      Impl::Clock::duration(impl_->epoch_ticks.load(std::memory_order_relaxed));
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(since_epoch).count());
}

std::uint64_t Tracer::next_unit_id() noexcept {
  return impl_->next_unit.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record(Span span) {
  if (!enabled()) return;
  std::uint32_t tid = 0;
  Impl::Buffer& buffer = impl_->local_buffer(&tid);
  span.tid = tid;
  util::MutexLock lock(buffer.mu);
  buffer.spans.push_back(span);
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  util::MutexLock lock(impl_->mu);
  for (const auto& buffer : impl_->buffers) {
    util::MutexLock buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
  }
  return out;
}

std::string Tracer::chrome_trace_json() const {
  std::string out = "{\"traceEvents\": [\n";
  const std::vector<Span> all = spans();
  for (std::size_t i = 0; i < all.size(); ++i) {
    out += "  ";
    append_span_json(out, all[i]);
    out += i + 1 < all.size() ? ",\n" : "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string Tracer::jsonl() const {
  std::string out;
  for (const Span& s : spans()) {
    append_span_json(out, s);
    out.push_back('\n');
  }
  return out;
}

void Tracer::reset() {
  util::MutexLock lock(impl_->mu);
  for (auto& buffer : impl_->buffers) {
    util::MutexLock buffer_lock(buffer->mu);
    buffer->spans.clear();
  }
  impl_->epoch_ticks.store(Impl::Clock::now().time_since_epoch().count(),
                           std::memory_order_relaxed);
  impl_->next_unit.store(1, std::memory_order_relaxed);
}

}  // namespace senids::obs
