#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>

namespace senids::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_format(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measured;
  va_copy(measured, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, measured);
  va_end(measured);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt, args);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

void append_span_json(std::string& out, const Span& s) {
  append_format(out,
                "{\"name\": \"%s\", \"cat\": \"stage\", \"ph\": \"X\", \"pid\": 1, "
                "\"tid\": %u, \"ts\": %llu, \"dur\": %llu, "
                "\"args\": {\"unit\": %llu, \"bytes\": %llu}}",
                s.name, s.tid, static_cast<unsigned long long>(s.ts_us),
                static_cast<unsigned long long>(s.dur_us),
                static_cast<unsigned long long>(s.unit_id),
                static_cast<unsigned long long>(s.bytes));
}

}  // namespace

struct Tracer::Impl {
  using Clock = std::chrono::steady_clock;

  struct Buffer {
    std::mutex mu;  // uncontended: one owner thread appends, collectors read
    std::vector<Span> spans;
  };

  mutable std::mutex mu;  // guards buffers registration and epoch
  std::vector<std::unique_ptr<Buffer>> buffers;
  Clock::time_point epoch = Clock::now();
  std::atomic<std::uint64_t> next_unit{1};
  std::atomic<std::uint32_t> next_tid{1};

  Buffer& local_buffer(std::uint32_t* tid_out) {
    // One buffer per (thread, tracer) pair; buffers outlive their thread
    // so spans from joined pool workers survive until export.
    thread_local Buffer* buffer = nullptr;
    thread_local std::uint32_t tid = 0;
    if (!buffer) {
      auto owned = std::make_unique<Buffer>();
      buffer = owned.get();
      tid = next_tid.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(mu);
      buffers.push_back(std::move(owned));
    }
    *tid_out = tid;
    return *buffer;
  }
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

bool Tracer::enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void Tracer::set_enabled(bool enabled) noexcept {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Tracer::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Impl::Clock::now() -
                                                            impl_->epoch)
          .count());
}

std::uint64_t Tracer::next_unit_id() noexcept {
  return impl_->next_unit.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record(Span span) {
  if (!enabled()) return;
  std::uint32_t tid = 0;
  Impl::Buffer& buffer = impl_->local_buffer(&tid);
  span.tid = tid;
  std::lock_guard lock(buffer.mu);
  buffer.spans.push_back(span);
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  std::lock_guard lock(impl_->mu);
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
  }
  return out;
}

std::string Tracer::chrome_trace_json() const {
  std::string out = "{\"traceEvents\": [\n";
  const std::vector<Span> all = spans();
  for (std::size_t i = 0; i < all.size(); ++i) {
    out += "  ";
    append_span_json(out, all[i]);
    out += i + 1 < all.size() ? ",\n" : "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string Tracer::jsonl() const {
  std::string out;
  for (const Span& s : spans()) {
    append_span_json(out, s);
    out.push_back('\n');
  }
  return out;
}

void Tracer::reset() {
  std::lock_guard lock(impl_->mu);
  for (auto& buffer : impl_->buffers) {
    std::lock_guard buffer_lock(buffer->mu);
    buffer->spans.clear();
  }
  impl_->epoch = Impl::Clock::now();
  impl_->next_unit.store(1, std::memory_order_relaxed);
}

}  // namespace senids::obs
