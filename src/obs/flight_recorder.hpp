// Unit flight recorder: per-worker lock-free ring buffers holding the
// last N analysis units each thread completed — source, payload size,
// frame/alert counts, per-stage (b)-(e) timings, and the verdict-cache
// disposition — plus a shared retained buffer that tail-latency
// *outliers* are promoted into, so "which unit just took 40 ms" still
// has an answer after ten thousand benign units have rolled the main
// rings over. The telemetry server dumps both on /tracez.
//
// Concurrency: each ring has exactly one writer (bound thread_local,
// like the tracer's span buffers) and any number of scraping readers.
// Records are packed into per-slot atomic words behind a seqlock
// sequence plus a fold checksum; readers that race a writer simply drop
// the torn slot. The slow buffer is multi-writer: slots are claimed
// with a fetch_add cursor and written under the same seqlock+checksum
// discipline. No mutex is ever taken on the record path.
//
// The slow threshold is rolling: it re-seeds every 256 records from the
// live senids_unit_seconds histogram (multiplier x p95, floored), so
// "slow" tracks the deployment's own latency distribution instead of a
// hard-coded constant.
//
// Disabled by default (configure(0) state); recording is additionally
// behind both obs kill switches (obs::set_metrics_enabled and
// -DSENIDS_OBS=OFF).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace senids::obs {

/// How the verdict cache handled a unit.
enum class CacheDisposition : std::uint8_t {
  kNone = 0,  // cache disabled
  kHit,
  kMiss,
  kBypass,  // over cache_max_unit_bytes
};

[[nodiscard]] std::string_view cache_disposition_name(CacheDisposition d) noexcept;

/// One completed analysis unit as the recorder remembers it. Stage
/// timings are microseconds, saturated at ~71 minutes (u32).
struct UnitRecord {
  std::uint64_t unit_id = 0;   // tracer correlation id (0 = unlabelled)
  std::uint64_t ts_us = 0;     // completion time, µs since recorder epoch
  std::uint32_t src = 0;       // IPv4 source address of the unit
  std::uint32_t payload_bytes = 0;
  std::uint32_t frames = 0;    // binary frames extracted
  std::uint32_t alerts = 0;
  std::uint32_t worker = 0;    // ring index (assigned on record)
  CacheDisposition cache = CacheDisposition::kNone;
  std::uint32_t extract_us = 0;
  std::uint32_t disasm_us = 0;
  std::uint32_t lift_us = 0;
  std::uint32_t match_us = 0;
  std::uint32_t emulate_us = 0;
  std::uint32_t total_us = 0;  // whole-unit wall (stages (b)-(e))
};

class FlightRecorder {
 public:
  struct Options {
    std::size_t slots = 0;       // per-worker ring entries; 0 disables
    std::size_t slow_slots = 64; // retained slow-unit buffer entries
    /// Floor of the rolling slow threshold: a unit is never promoted for
    /// being faster than this, however tight the p95 gets.
    double slow_floor_seconds = 250e-6;
    /// Rolling threshold = max(floor, multiplier x p95(senids_unit_seconds)).
    double slow_multiplier = 8.0;
  };

  static FlightRecorder& instance();

  /// Reconfigure (drops all held records). configure({.slots = 0})
  /// disables recording entirely.
  void configure(const Options& options);
  [[nodiscard]] static bool enabled() noexcept;
  [[nodiscard]] Options options() const;

  /// Append one completed unit to the calling thread's ring; promotes it
  /// into the slow buffer when total_us exceeds the rolling threshold.
  /// No-op while disabled (either kill switch, or slots == 0).
  void record(const UnitRecord& rec) noexcept;

  /// Current promotion threshold in seconds.
  [[nodiscard]] double slow_threshold_seconds() const noexcept;
  /// Re-seed the rolling threshold from the unit-latency histogram now
  /// (record() does this automatically every 256 records per ring).
  void refresh_slow_threshold() noexcept;

  /// Every readable record across all rings, oldest-first within each
  /// ring, ring-major. Torn slots (scraped mid-write) are skipped.
  [[nodiscard]] std::vector<UnitRecord> recent() const;

  /// The retained slow-unit records, oldest first. `clear` empties the
  /// buffer after reading (scrape-and-ack).
  [[nodiscard]] std::vector<UnitRecord> slow(bool clear = false);

  /// JSON for /tracez: threshold, recent rings, and the slow buffer.
  [[nodiscard]] std::string json() const;

  /// Drop every record, keep the configuration.
  void reset();

 private:
  FlightRecorder();
  struct Impl;
  Impl* impl_;
};

}  // namespace senids::obs
