// Per-thread work attribution for the pipeline's long-running loops:
// analysis workers draining the unit queue, shard consumers running
// stage (a), and live sessions fed from a capture thread. Each loop
// owns one WorkerSlot and splits its wall time into *busy* (doing
// pipeline work) and *idle* (blocked on a queue or waiting for input),
// stamping a heartbeat every iteration — which is exactly what a live
// operator needs to answer "is shard 3 stalled or merely idle" and
// "where did the worker wall time go". The telemetry server surfaces
// the table on /statusz and derives readiness from the heartbeats.
//
// Slots are found-or-created by (kind, index) and live for the process
// lifetime, so repeated captures accumulate into the same slots the way
// the metric registry accumulates counters. All mutation is relaxed
// atomics on a slot owned by one thread at a time; both kill switches
// (obs::set_metrics_enabled, -DSENIDS_OBS=OFF) silence the mutation
// paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace senids::obs {

/// One attribution slot, owned by one pipeline thread at a time.
class WorkerSlot {
 public:
  /// Mark the owning loop running: bumps the active count and stamps the
  /// run start + a heartbeat. Balanced by end_run().
  void begin_run() noexcept;
  void end_run() noexcept;

  void add_busy(double seconds) noexcept { add_ns(busy_ns_, seconds); }
  void add_idle(double seconds) noexcept { add_ns(idle_ns_, seconds); }
  void add_units(std::uint64_t n = 1) noexcept {
#if !defined(SENIDS_NO_OBS)
    if (metrics_enabled()) units_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  /// Stamp "this loop is making progress". Cheap enough per iteration.
  void heartbeat() noexcept;

  struct Snapshot {
    std::string kind;
    std::size_t index = 0;
    bool active = false;
    double busy_seconds = 0.0;
    double idle_seconds = 0.0;
    std::uint64_t units = 0;
    /// Wall seconds since the last heartbeat, measured at snapshot time.
    /// Negative when the slot never heartbeat.
    double seconds_since_heartbeat = -1.0;
    /// Wall of the current run so far (active) or of the last finished
    /// run (inactive). 0 before the first begin_run().
    double run_seconds = 0.0;
  };

 private:
  friend class WorkerTable;
  WorkerSlot() = default;

  void add_ns(std::atomic<std::uint64_t>& field, double seconds) noexcept {
#if !defined(SENIDS_NO_OBS)
    if (!metrics_enabled() || seconds <= 0) return;
    field.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                    std::memory_order_relaxed);
#else
    (void)field;
    (void)seconds;
#endif
  }

  std::string kind_;
  std::size_t index_ = 0;
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> idle_ns_{0};
  std::atomic<std::uint64_t> units_{0};
  std::atomic<std::uint64_t> heartbeat_ns_{0};  // since table epoch; 0 = never
  std::atomic<std::uint64_t> run_start_ns_{0};
  std::atomic<std::uint64_t> run_end_ns_{0};
  std::atomic<std::int64_t> active_{0};  // count: slots survive engine reuse
};

/// Process-wide slot registry, mirroring the metric Registry's
/// find-or-create contract: look the slot up once per run, keep the
/// reference (registration takes a lock, mutation never does).
class WorkerTable {
 public:
  static WorkerTable& instance();

  /// Find-or-create the slot for (kind, index). `kind` is a short stable
  /// family name: "worker" (analysis pool), "shard" (stage-(a)
  /// consumers), "session" (LiveSession feeds).
  WorkerSlot& slot(std::string_view kind, std::size_t index);

  /// Point-in-time view of every slot, ordered by (kind, index).
  [[nodiscard]] std::vector<WorkerSlot::Snapshot> snapshot() const;

  /// Nanoseconds since the table epoch (process start, effectively).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Zero every slot (handles stay valid). Tests / per-run deltas only.
  void reset();

 private:
  WorkerTable();
  struct Impl;
  Impl* impl_;
};

}  // namespace senids::obs
