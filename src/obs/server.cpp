#include "obs/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/sync.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/workers.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SENIDS_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace senids::obs {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_format(std::string& out, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list measured;
  va_copy(measured, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, measured);
  va_end(measured);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt, args);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      append_format(out, "\\u%04x", static_cast<unsigned>(c) & 0xff);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Value of the first gauge registered under `family` with exactly
/// `labels` ("" = unlabelled). 0 when absent — callers treat 0 as "not
/// configured" and skip the dependent check.
std::int64_t gauge_value(const std::vector<MetricView>& views, std::string_view family,
                         std::string_view labels = "") {
  for (const MetricView& m : views) {
    if (m.family == family && m.labels == labels && m.gauge) return m.gauge->value();
  }
  return 0;
}

std::uint64_t counter_value(const std::vector<MetricView>& views,
                            std::string_view family) {
  for (const MetricView& m : views) {
    if (m.family == family && m.counter) return m.counter->value();
  }
  return 0;
}

}  // namespace

// ------------------------------------------------------------------ health

HealthReport evaluate_health(const HealthThresholds& t) {
  const std::vector<MetricView> views = Registry::instance().metrics();
  HealthReport report;
  std::string checks;
  auto check = [&](std::string_view name, bool ok, const std::string& detail) {
    if (!ok) report.healthy = false;
    append_format(checks, "%s    {\"name\": \"%s\", \"ok\": %s, \"detail\": \"%s\"}",
                  checks.empty() ? "" : ",\n", std::string(name).c_str(),
                  ok ? "true" : "false", json_escape(detail).c_str());
  };

  // Unit handoff queue: saturated when depth reaches the configured
  // fraction of capacity. Capacity gauge unset => engine never ran with
  // a worker pool; nothing to judge.
  const std::int64_t unit_cap = gauge_value(views, "senids_unit_queue_capacity");
  if (unit_cap > 0) {
    const std::int64_t depth = gauge_value(views, "senids_queue_depth");
    const bool ok =
        static_cast<double>(depth) < t.queue_saturation * static_cast<double>(unit_cap);
    std::string detail;
    append_format(detail, "depth %lld of %lld", static_cast<long long>(depth),
                  static_cast<long long>(unit_cap));
    check("unit_queue", ok, detail);
  }

  // Per-shard dispatch queues against the shared capacity gauge.
  const std::int64_t shard_cap = gauge_value(views, "senids_shard_packet_queue_capacity");
  if (shard_cap > 0) {
    for (const MetricView& m : views) {
      if (m.family != "senids_shard_packet_queue_depth" || !m.gauge) continue;
      const std::int64_t depth = m.gauge->value();
      const bool ok = static_cast<double>(depth) <
                      t.queue_saturation * static_cast<double>(shard_cap);
      std::string detail;
      append_format(detail, "%s depth %lld of %lld", std::string(m.labels).c_str(),
                    static_cast<long long>(depth), static_cast<long long>(shard_cap));
      check("shard_queue", ok, detail);
    }
  }

  // Flow-table occupancy against the configured cap (0 = uncapped).
  const std::int64_t max_flows = gauge_value(views, "senids_flow_table_max_flows");
  if (max_flows > 0) {
    const std::int64_t flows = gauge_value(views, "senids_flow_table_flows");
    const bool ok =
        static_cast<double>(flows) < t.flow_occupancy * static_cast<double>(max_flows);
    std::string detail;
    append_format(detail, "flows %lld of %lld", static_cast<long long>(flows),
                  static_cast<long long>(max_flows));
    check("flow_table", ok, detail);
  }

  // Heartbeats: an active loop that stopped stamping progress is stalled
  // (blocked consumer, livelocked shard), which no gauge shows directly.
  for (const WorkerSlot::Snapshot& w : WorkerTable::instance().snapshot()) {
    if (!w.active || w.seconds_since_heartbeat < 0) continue;
    if (w.seconds_since_heartbeat <= t.heartbeat_stale_seconds) continue;
    std::string detail;
    append_format(detail, "%s %zu last heartbeat %.1fs ago", w.kind.c_str(), w.index,
                  w.seconds_since_heartbeat);
    check("heartbeat", false, detail);
  }

  std::string out = "{\n";
  append_format(out, "  \"status\": \"%s\",\n  \"live\": true,\n",
                report.healthy ? "healthy" : "unhealthy");
  out += "  \"checks\": [\n" + checks + (checks.empty() ? "" : "\n") + "  ]\n}\n";
  report.json = std::move(out);
  return report;
}

// ------------------------------------------------------------------ statusz

namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Touched at static-init/first-use so uptime starts near process start.
const bool g_epoch_initialized = (process_epoch(), true);

}  // namespace

std::string status_json(const std::string& build_info) {
  (void)g_epoch_initialized;
  const std::vector<MetricView> views = Registry::instance().metrics();
  std::string out = "{\n";
  append_format(out, "  \"uptime_seconds\": %.3f,\n",
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              process_epoch())
                    .count());
  append_format(out, "  \"build_info\": \"%s\",\n", json_escape(build_info).c_str());

  append_format(out,
                "  \"pipeline\": {\"packets\": %llu, \"suspicious\": %llu, "
                "\"units\": %llu, \"frames\": %llu, \"alerts\": %llu, "
                "\"bytes_analyzed\": %llu},\n",
                static_cast<unsigned long long>(counter_value(views, "senids_packets_total")),
                static_cast<unsigned long long>(
                    counter_value(views, "senids_suspicious_packets_total")),
                static_cast<unsigned long long>(counter_value(views, "senids_units_total")),
                static_cast<unsigned long long>(counter_value(views, "senids_frames_total")),
                static_cast<unsigned long long>(counter_value(views, "senids_alerts_total")),
                static_cast<unsigned long long>(
                    counter_value(views, "senids_bytes_analyzed_total")));

  append_format(out,
                "  \"unit_queue\": {\"depth\": %lld, \"depth_peak\": %lld, "
                "\"capacity\": %lld, \"bytes\": %lld},\n",
                static_cast<long long>(gauge_value(views, "senids_queue_depth")),
                static_cast<long long>(gauge_value(views, "senids_unit_queue_depth_peak")),
                static_cast<long long>(gauge_value(views, "senids_unit_queue_capacity")),
                static_cast<long long>(gauge_value(views, "senids_queue_bytes")));

  // Per-shard series, keyed by the shard="<i>" label.
  out += "  \"shards\": [\n";
  bool first_shard = true;
  for (const MetricView& m : views) {
    if (m.family != "senids_shard_packet_queue_depth" || !m.gauge) continue;
    const std::string labels(m.labels);
    if (!first_shard) out += ",\n";
    first_shard = false;
    std::int64_t peak = 0;
    std::uint64_t packets = 0;
    std::uint64_t units = 0;
    std::int64_t flows = 0;
    for (const MetricView& v : views) {
      if (v.labels != m.labels) continue;
      if (v.family == "senids_shard_packet_queue_depth_peak" && v.gauge) {
        peak = v.gauge->value();
      } else if (v.family == "senids_shard_packets_total" && v.counter) {
        packets = v.counter->value();
      } else if (v.family == "senids_shard_units_total" && v.counter) {
        units = v.counter->value();
      } else if (v.family == "senids_shard_flows" && v.gauge) {
        flows = v.gauge->value();
      }
    }
    // labels is shard="<i>"; pull the quoted value back out.
    std::string shard_id = labels;
    const std::size_t eq = shard_id.find('=');
    if (eq != std::string::npos) {
      shard_id = shard_id.substr(eq + 1);
      std::erase(shard_id, '"');
    }
    append_format(out,
                  "    {\"shard\": %s, \"queue_depth\": %lld, "
                  "\"queue_depth_peak\": %lld, \"packets\": %llu, \"units\": %llu, "
                  "\"flows\": %lld}",
                  shard_id.c_str(), static_cast<long long>(m.gauge->value()),
                  static_cast<long long>(peak), static_cast<unsigned long long>(packets),
                  static_cast<unsigned long long>(units), static_cast<long long>(flows));
  }
  out += first_shard ? "  ],\n" : "\n  ],\n";

  // Worker attribution: the per-thread busy/idle split, plus utilization
  // = busy / (busy + idle) — "where is worker wall time going".
  out += "  \"workers\": [\n";
  const std::vector<WorkerSlot::Snapshot> workers = WorkerTable::instance().snapshot();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerSlot::Snapshot& w = workers[i];
    const double attributed = w.busy_seconds + w.idle_seconds;
    append_format(out,
                  "    {\"kind\": \"%s\", \"index\": %zu, \"active\": %s, "
                  "\"busy_seconds\": %.6f, \"idle_seconds\": %.6f, "
                  "\"utilization\": %.4f, \"units\": %llu, "
                  "\"seconds_since_heartbeat\": %.3f, \"run_seconds\": %.6f}%s\n",
                  json_escape(w.kind).c_str(), w.index, w.active ? "true" : "false",
                  w.busy_seconds, w.idle_seconds,
                  attributed > 0 ? w.busy_seconds / attributed : 0.0,
                  static_cast<unsigned long long>(w.units), w.seconds_since_heartbeat,
                  w.run_seconds, i + 1 < workers.size() ? "," : "");
  }
  out += "  ],\n";

  const std::uint64_t hits = counter_value(views, "senids_verdict_cache_hits_total");
  const std::uint64_t misses = counter_value(views, "senids_verdict_cache_misses_total");
  append_format(out,
                "  \"verdict_cache\": {\"hits\": %llu, \"misses\": %llu, "
                "\"bypass\": %llu, \"hit_rate\": %.4f, \"entries\": %lld, "
                "\"bytes\": %lld},\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(
                    counter_value(views, "senids_verdict_cache_bypass_total")),
                hits + misses > 0
                    ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                    : 0.0,
                static_cast<long long>(gauge_value(views, "senids_verdict_cache_entries")),
                static_cast<long long>(gauge_value(views, "senids_verdict_cache_bytes")));

  append_format(
      out,
      "  \"flows\": {\"live\": %lld, \"max\": %lld, \"created\": %llu, "
      "\"evicted_idle\": %llu, \"evicted_overflow\": %llu, \"truncated\": %llu},\n",
      static_cast<long long>(gauge_value(views, "senids_flow_table_flows")),
      static_cast<long long>(gauge_value(views, "senids_flow_table_max_flows")),
      static_cast<unsigned long long>(counter_value(views, "senids_flows_created_total")),
      static_cast<unsigned long long>(
          counter_value(views, "senids_flows_evicted_idle_total")),
      static_cast<unsigned long long>(
          counter_value(views, "senids_flows_evicted_overflow_total")),
      static_cast<unsigned long long>(
          counter_value(views, "senids_streams_truncated_total")));

  const Histogram::Snapshot unit = pipeline_metrics().unit_seconds->snapshot();
  append_format(out,
                "  \"unit_latency_seconds\": {\"count\": %llu, \"sum\": %.9g, "
                "\"p50\": %.9g, \"p95\": %.9g, \"p99\": %.9g},\n",
                static_cast<unsigned long long>(unit.count), unit.sum_seconds,
                unit.quantile(0.50), unit.quantile(0.95), unit.quantile(0.99));

  const FlightRecorder::Options fr = FlightRecorder::instance().options();
  append_format(out,
                "  \"flight_recorder\": {\"enabled\": %s, \"slots\": %zu, "
                "\"slow_threshold_us\": %.3f}\n",
                FlightRecorder::enabled() ? "true" : "false", fr.slots,
                FlightRecorder::instance().slow_threshold_seconds() * 1e6);
  out += "}\n";
  return out;
}

// ------------------------------------------------------------- HTTP server

#if SENIDS_HAVE_SOCKETS

struct TelemetryServer::Impl {
  TelemetryOptions options;
  // Written by start() before the accept thread exists, read by the
  // accept loop, closed exactly once by stop() after the join (the
  // lifecycle mutex orders that close; the loop itself never needs it).
  int listen_fd = -1;
  std::uint16_t port = 0;
  // Lock-order-checker finding: stop() used to gate on stop.exchange()
  // but both the destructor and an explicit stop() caller could still
  // reach join() concurrently — std::thread::join racing itself is UB.
  // The lifecycle mutex makes join-then-close a critical section;
  // joinable() flips under it, so the second caller no-ops.
  util::Mutex lifecycle_mu{"TelemetryServer.lifecycle"};
  std::thread accept_thread GUARDED_BY(lifecycle_mu);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> requests{0};

  void run();
  void handle_connection(int fd);
};

namespace {

void set_timeout(int fd, int optname, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof tv);
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;  // timeout, reset, or shutdown: give up
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void respond(int fd, int status, std::string_view reason, std::string_view content_type,
             std::string_view body) {
  std::string head;
  append_format(head,
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, std::string(reason).c_str(), std::string(content_type).c_str(),
                body.size());
  if (send_all(fd, head)) send_all(fd, body);
}

constexpr std::string_view kIndexBody =
    "senids telemetry\n"
    "  /metrics  Prometheus exposition\n"
    "  /healthz  liveness + readiness\n"
    "  /statusz  JSON status snapshot\n"
    "  /tracez   unit flight-recorder dump\n";

}  // namespace

void TelemetryServer::Impl::handle_connection(int fd) {
  set_timeout(fd, SO_RCVTIMEO, options.handler_timeout_seconds);
  set_timeout(fd, SO_SNDTIMEO, options.handler_timeout_seconds);

  std::string request;
  char buf[1024];
  while (request.size() < options.max_request_bytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // timeout or close
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t eol = request.find("\r\n");
  const std::string_view line =
      std::string_view(request).substr(0, eol == std::string::npos ? request.size() : eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    respond(fd, 400, "Bad Request", "text/plain; charset=utf-8", "bad request\n");
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);

  if (method != "GET" && method != "HEAD") {
    respond(fd, 405, "Method Not Allowed", "text/plain; charset=utf-8",
            "only GET is served here\n");
    return;
  }
  const bool head = method == "HEAD";
  auto reply = [&](std::string_view content_type, std::string_view body, int status = 200,
                   std::string_view reason = "OK") {
    respond(fd, status, reason, content_type, head ? std::string_view{} : body);
  };

  if (path == "/" || path == "/index.html") {
    reply("text/plain; charset=utf-8", kIndexBody);
  } else if (path == "/metrics") {
    reply("text/plain; version=0.0.4; charset=utf-8",
          Registry::instance().prometheus_text());
  } else if (path == "/healthz") {
    const HealthReport health = evaluate_health(options.health);
    reply("application/json", health.json, health.healthy ? 200 : 503,
          health.healthy ? "OK" : "Service Unavailable");
  } else if (path == "/statusz") {
    reply("application/json", status_json(options.build_info));
  } else if (path == "/tracez") {
    reply("application/json", FlightRecorder::instance().json());
  } else {
    reply("text/plain; charset=utf-8", "not found\n", 404, "Not Found");
  }
}

void TelemetryServer::Impl::run() {
  while (!stop.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // 100ms stop-poll granularity
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

TelemetryServer::TelemetryServer() : impl_(std::make_unique<Impl>()) {}

std::unique_ptr<TelemetryServer> TelemetryServer::start(TelemetryOptions options) {
  auto server = std::unique_ptr<TelemetryServer>(new TelemetryServer());
  Impl& im = *server->impl_;
  im.options = std::move(options);

  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listen_fd < 0) {
    std::fprintf(stderr, "senids telemetry: socket() failed: %s\n",
                 std::strerror(errno));
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.options.port);
  if (::inet_pton(AF_INET, im.options.bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "senids telemetry: bad bind address %s\n",
                 im.options.bind_address.c_str());
    ::close(im.listen_fd);
    return nullptr;
  }
  if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(im.listen_fd, 16) != 0) {
    std::fprintf(stderr, "senids telemetry: cannot bind %s:%u: %s\n",
                 im.options.bind_address.c_str(), im.options.port,
                 std::strerror(errno));
    ::close(im.listen_fd);
    return nullptr;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    im.port = ntohs(bound.sin_port);
  }
  {
    util::MutexLock lock(im.lifecycle_mu);
    im.accept_thread = std::thread([&im] { im.run(); });
  }
  return server;
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() {
  Impl& im = *impl_;
  im.stop.store(true, std::memory_order_relaxed);
  util::MutexLock lock(im.lifecycle_mu);
  if (im.accept_thread.joinable()) im.accept_thread.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
}

std::uint16_t TelemetryServer::port() const noexcept { return impl_->port; }

std::uint64_t TelemetryServer::requests_served() const noexcept {
  return impl_->requests.load(std::memory_order_relaxed);
}

#else  // !SENIDS_HAVE_SOCKETS

struct TelemetryServer::Impl {};

TelemetryServer::TelemetryServer() = default;
TelemetryServer::~TelemetryServer() = default;

std::unique_ptr<TelemetryServer> TelemetryServer::start(TelemetryOptions) {
  std::fprintf(stderr, "senids telemetry: no socket support on this platform\n");
  return nullptr;
}

void TelemetryServer::stop() {}
std::uint16_t TelemetryServer::port() const noexcept { return 0; }
std::uint64_t TelemetryServer::requests_served() const noexcept { return 0; }

#endif

}  // namespace senids::obs
