#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>

#include "util/sync.hpp"

namespace senids::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// printf-append helper shared by the exporters.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void append_format(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measured;
  va_copy(measured, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, measured);
  va_end(measured);
  if (n > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(n) + 1, fmt, args);
    out.resize(old + static_cast<std::size_t>(n));
  }
  va_end(args);
}

std::string format_double(double v) {
  std::string out;
  append_format(out, "%.9g", v);
  return out;
}

/// Prometheus exposition-format escaping for label values: backslash,
/// double quote, and newline must be escaped inside the quotes.
std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// HELP-text escaping: backslash and newline only (quotes are legal).
std::string escape_help(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

}  // namespace detail

// ------------------------------------------------------------- Histogram

double Histogram::bucket_bound(std::size_t i) noexcept {
  return std::ldexp(1e-6, static_cast<int>(i));
}

std::size_t Histogram::bucket_index(double seconds) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (seconds <= bucket_bound(i)) return i;
  }
  return kBuckets;  // +Inf overflow bucket
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  std::uint64_t sum_ns = 0;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i <= kBuckets; ++i) {
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    sum_ns += s.sum_ns.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t b : snap.buckets) snap.count += b;
  snap.sum_seconds = static_cast<double>(sum_ns) * 1e-9;
  return snap;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum_ns.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // The +Inf bucket has no upper bound; report the largest finite one.
      if (i == kBuckets) return bucket_bound(kBuckets - 1);
      const double lower = i == 0 ? 0.0 : bucket_bound(i - 1);
      const double upper = bucket_bound(i);
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bucket_bound(kBuckets - 1);
}

// --------------------------------------------------------------- Registry

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

struct Entry {
  std::string family;
  std::string labels;
  std::string help;
  Kind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

}  // namespace

struct Registry::Impl {
  mutable util::Mutex mu{"MetricsRegistry"};
  // Keyed on (family, labels); std::map node stability keeps the
  // string_views handed out in MetricView valid forever.
  std::map<std::pair<std::string, std::string>, Entry> entries GUARDED_BY(mu);

  Entry& find_or_create(std::string_view family, std::string_view help,
                        std::string_view label_key, std::string_view label_value,
                        Kind kind) {
    std::string labels;
    if (!label_key.empty()) {
      labels.append(label_key)
          .append("=\"")
          .append(escape_label_value(label_value))
          .append("\"");
    }
    util::MutexLock lock(mu);
    auto key = std::make_pair(std::string(family), labels);
    auto it = entries.find(key);
    if (it != entries.end()) return it->second;
    Entry e;
    e.family = std::string(family);
    e.labels = std::move(labels);
    e.help = std::string(help);
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
    }
    return entries.emplace(std::move(key), std::move(e)).first->second;
  }
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(std::string_view family, std::string_view help,
                           std::string_view label_key, std::string_view label_value) {
  return *impl().find_or_create(family, help, label_key, label_value, Kind::kCounter)
              .counter;
}

Gauge& Registry::gauge(std::string_view family, std::string_view help,
                       std::string_view label_key, std::string_view label_value) {
  return *impl().find_or_create(family, help, label_key, label_value, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view family, std::string_view help,
                               std::string_view label_key,
                               std::string_view label_value) {
  return *impl().find_or_create(family, help, label_key, label_value, Kind::kHistogram)
              .histogram;
}

std::vector<MetricView> Registry::metrics() const {
  Impl& im = impl();
  util::MutexLock lock(im.mu);
  std::vector<MetricView> out;
  out.reserve(im.entries.size());
  for (const auto& [key, e] : im.entries) {
    MetricView v;
    v.family = e.family;
    v.labels = e.labels;
    v.help = e.help;
    v.counter = e.counter.get();
    v.gauge = e.gauge.get();
    v.histogram = e.histogram.get();
    out.push_back(v);
  }
  return out;
}

void Registry::reset_values() {
  Impl& im = impl();
  util::MutexLock lock(im.mu);
  for (auto& [key, e] : im.entries) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

std::string Registry::prometheus_text() const {
  std::string out;
  std::string last_family;
  for (const MetricView& m : metrics()) {
    const std::string family(m.family);
    if (family != last_family) {
      if (!m.help.empty()) {
        append_format(out, "# HELP %s %s\n", family.c_str(),
                      escape_help(m.help).c_str());
      }
      const char* type = m.counter ? "counter" : m.gauge ? "gauge" : "histogram";
      append_format(out, "# TYPE %s %s\n", family.c_str(), type);
      last_family = family;
    }
    const std::string labels(m.labels);
    if (m.counter) {
      if (labels.empty()) {
        append_format(out, "%s %llu\n", family.c_str(),
                      static_cast<unsigned long long>(m.counter->value()));
      } else {
        append_format(out, "%s{%s} %llu\n", family.c_str(), labels.c_str(),
                      static_cast<unsigned long long>(m.counter->value()));
      }
    } else if (m.gauge) {
      if (labels.empty()) {
        append_format(out, "%s %lld\n", family.c_str(),
                      static_cast<long long>(m.gauge->value()));
      } else {
        append_format(out, "%s{%s} %lld\n", family.c_str(), labels.c_str(),
                      static_cast<long long>(m.gauge->value()));
      }
    } else if (m.histogram) {
      const Histogram::Snapshot snap = m.histogram->snapshot();
      const std::string sep = labels.empty() ? "" : labels + ",";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
        cumulative += snap.buckets[i];
        const std::string le = i == Histogram::kBuckets
                                   ? "+Inf"
                                   : format_double(Histogram::bucket_bound(i));
        append_format(out, "%s_bucket{%sle=\"%s\"} %llu\n", family.c_str(), sep.c_str(),
                      le.c_str(), static_cast<unsigned long long>(cumulative));
      }
      if (labels.empty()) {
        append_format(out, "%s_sum %.9g\n", family.c_str(), snap.sum_seconds);
        append_format(out, "%s_count %llu\n", family.c_str(),
                      static_cast<unsigned long long>(snap.count));
      } else {
        append_format(out, "%s_sum{%s} %.9g\n", family.c_str(), labels.c_str(),
                      snap.sum_seconds);
        append_format(out, "%s_count{%s} %llu\n", family.c_str(), labels.c_str(),
                      static_cast<unsigned long long>(snap.count));
      }
    }
  }
  return out;
}

std::string Registry::json() const {
  std::string out = "[\n";
  const std::vector<MetricView> views = metrics();
  for (std::size_t i = 0; i < views.size(); ++i) {
    const MetricView& m = views[i];
    append_format(out, "  {\"name\": \"%s\"", std::string(m.family).c_str());
    if (!m.labels.empty()) {
      // labels hold key="value"; JSON wants key/value split out.
      const std::string labels(m.labels);
      const std::size_t eq = labels.find('=');
      append_format(out, ", \"%s\": %s", labels.substr(0, eq).c_str(),
                    labels.substr(eq + 1).c_str());
    }
    if (m.counter) {
      append_format(out, ", \"type\": \"counter\", \"value\": %llu",
                    static_cast<unsigned long long>(m.counter->value()));
    } else if (m.gauge) {
      append_format(out, ", \"type\": \"gauge\", \"value\": %lld",
                    static_cast<long long>(m.gauge->value()));
    } else if (m.histogram) {
      const Histogram::Snapshot snap = m.histogram->snapshot();
      append_format(out,
                    ", \"type\": \"histogram\", \"count\": %llu, \"sum\": %.9g, "
                    "\"p50\": %.9g, \"p95\": %.9g, \"p99\": %.9g, \"buckets\": [",
                    static_cast<unsigned long long>(snap.count), snap.sum_seconds,
                    snap.quantile(0.50), snap.quantile(0.95), snap.quantile(0.99));
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b <= Histogram::kBuckets; ++b) {
        cumulative += snap.buckets[b];
        const std::string le = b == Histogram::kBuckets
                                   ? "\"+Inf\""
                                   : format_double(Histogram::bucket_bound(b));
        append_format(out, "%s{\"le\": %s, \"count\": %llu}", b ? ", " : "", le.c_str(),
                      static_cast<unsigned long long>(cumulative));
      }
      out += "]";
    }
    out += i + 1 < views.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

}  // namespace senids::obs
