// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms with quantile summaries, exportable as Prometheus
// text exposition or JSON.
//
// Hot-path design: counters and histograms are sharded into cache-line-
// padded atomic cells indexed by a per-thread slot, so concurrent
// increments from the analysis worker pool never contend on one line;
// reads aggregate across shards (monotonic but not a point-in-time
// snapshot, which is all scrape-style consumers need). Handles returned
// by the registry are stable for the process lifetime — look them up
// once, keep the reference.
//
// Two kill switches: `set_metrics_enabled(false)` turns every mutation
// into a single relaxed load + branch at runtime, and building with
// -DSENIDS_NO_OBS (CMake option SENIDS_OBS=OFF) compiles the mutation
// paths out entirely. Export/registration stay available either way so
// callers need no conditional code.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace senids::obs {

/// Runtime kill switch shared by every metric. On by default: a sharded
/// relaxed increment is a handful of nanoseconds.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

namespace detail {
/// Slot index for the calling thread, stable for the thread's lifetime.
[[nodiscard]] std::size_t thread_shard() noexcept;

inline constexpr std::size_t kShards = 16;  // power of two

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonic counter. add() is wait-free and contention-free across
/// threads that land on different shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
#if !defined(SENIDS_NO_OBS)
    if (!metrics_enabled()) return;
    shards_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedU64, detail::kShards> shards_;
};

/// Instantaneous value (queue depth, live flows). Set/add from any
/// thread; one atomic cell is enough because gauges are updated at unit
/// granularity, not per byte.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#if !defined(SENIDS_NO_OBS)
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t n) noexcept {
#if !defined(SENIDS_NO_OBS)
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  void sub(std::int64_t n) noexcept { add(-n); }

  /// Raise the gauge to `v` if it is below it (high-watermark semantics,
  /// e.g. peak queue depth). CAS loop; contention is bounded because the
  /// maximum only ratchets upward.
  void set_max(std::int64_t v) noexcept {
#if !defined(SENIDS_NO_OBS)
    if (!metrics_enabled()) return;
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram over seconds. Bucket upper bounds are
/// geometric, 1 µs · 2^k up to ~16.8 s, plus +Inf — wide enough for a
/// per-packet classify tick and a whole-capture emulation stage alike.
/// Per-shard bucket counts keep observe() contention-free; quantiles are
/// estimated from the aggregated buckets by linear interpolation inside
/// the bucket holding the rank (standard Prometheus-style estimation:
/// exact count, bounded value error).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 25;  // finite bounds; +Inf implicit

  /// Upper bound (seconds) of finite bucket `i`: 1e-6 * 2^i.
  [[nodiscard]] static double bucket_bound(std::size_t i) noexcept;

  void observe(double seconds) noexcept {
#if !defined(SENIDS_NO_OBS)
    if (!metrics_enabled()) return;
    Shard& s = shards_[detail::thread_shard()];
    s.buckets[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
    const double ns = seconds * 1e9;
    s.sum_ns.fetch_add(ns > 0 ? static_cast<std::uint64_t>(ns) : 0,
                       std::memory_order_relaxed);
#else
    (void)seconds;
#endif
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets + 1> buckets{};  // last = +Inf overflow
    std::uint64_t count = 0;
    double sum_seconds = 0.0;

    /// Quantile estimate, q in [0,1]. 0 when the histogram is empty.
    [[nodiscard]] double quantile(double q) const noexcept;
  };

  [[nodiscard]] Snapshot snapshot() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return snapshot().count; }

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets{};
    std::atomic<std::uint64_t> sum_ns{0};
  };

  [[nodiscard]] static std::size_t bucket_index(double seconds) noexcept;

  std::array<Shard, detail::kShards> shards_;
};

/// One registered metric as seen by the exporters.
struct MetricView {
  std::string_view family;  // e.g. "senids_stage_seconds"
  std::string_view labels;  // e.g. "stage=\"extract\"" ("" = none)
  std::string_view help;
  const Counter* counter = nullptr;      // exactly one of the three is set
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

/// Name → metric map. Registration is find-or-create keyed on
/// (family, labels): two call sites asking for the same name share the
/// handle, which is what lets e.g. every engine instance feed one set of
/// process-wide pipeline metrics. Registration takes a lock; it is meant
/// for startup / first-use, with the handle cached by the caller.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view family, std::string_view help = "",
                   std::string_view label_key = "", std::string_view label_value = "");
  Gauge& gauge(std::string_view family, std::string_view help = "",
               std::string_view label_key = "", std::string_view label_value = "");
  Histogram& histogram(std::string_view family, std::string_view help = "",
                       std::string_view label_key = "", std::string_view label_value = "");

  /// Stable views over every registered metric, sorted by (family, labels).
  [[nodiscard]] std::vector<MetricView> metrics() const;

  /// Prometheus text exposition format (one HELP/TYPE per family).
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON array; histograms carry count/sum/p50/p95/p99 plus raw buckets.
  [[nodiscard]] std::string json() const;

  /// Zero every registered metric (handles stay valid). For tests and
  /// per-run deltas; not meant for the hot path.
  void reset_values();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace senids::obs
