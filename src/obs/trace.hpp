// Lightweight pipeline tracer: one structured span per stage per
// analysis unit, exportable as Chrome trace-event JSON (loadable in
// chrome://tracing and ui.perfetto.dev) or JSONL (one span object per
// line, for ad-hoc jq/scripted analysis).
//
// Recording is off by default — a NIDS saturating a link must not pay
// for a feature used during capacity planning and incident forensics.
// When enabled, spans land in per-thread buffers (registered once per
// thread under the collector mutex, then appended under the buffer's own
// uncontended mutex), so worker threads never serialize against each
// other on the hot path.
//
// Span timestamps are microseconds since the tracer epoch (first use or
// last reset()). Stages of one analysis unit are laid out sequentially
// from the unit's start using their *measured* durations — exact costs,
// synthesized placement — because the lift/match work of a unit
// interleaves at instruction-trace granularity and recording every
// interleaving would cost more than the stages themselves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace senids::obs {

struct Span {
  const char* name = "";  // stage name; must be a string literal / static
  std::uint64_t unit_id = 0;   // analysis-unit correlation id (0 = none)
  std::uint64_t ts_us = 0;     // start, µs since tracer epoch
  std::uint64_t dur_us = 0;
  std::uint64_t bytes = 0;     // stage payload size (0 = not applicable)
  std::uint32_t tid = 0;       // filled in by record()
};

class Tracer {
 public:
  static Tracer& instance();

  [[nodiscard]] static bool enabled() noexcept;
  static void set_enabled(bool enabled) noexcept;

  /// Microseconds since the tracer epoch (monotonic).
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Fresh correlation id for one analysis unit.
  [[nodiscard]] std::uint64_t next_unit_id() noexcept;

  /// Append one span (no-op while disabled).
  void record(Span span);

  /// Every span recorded so far, in per-thread recording order.
  [[nodiscard]] std::vector<Span> spans() const;

  /// Chrome trace-event format: {"traceEvents": [...]} with complete
  /// ("ph":"X") events.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// One JSON object per line.
  [[nodiscard]] std::string jsonl() const;

  /// Drop all spans and restart the epoch. Not thread-safe against
  /// concurrent record(); quiesce the pipeline first (tests, CLI between
  /// runs).
  void reset();

 private:
  Tracer();
  struct Impl;
  Impl* impl_;
};

}  // namespace senids::obs
