// Pipeline-wide metric names and handles. One struct of pre-registered
// registry handles covers everything the engine and live session record,
// so (a) hot paths never touch the registry map, and (b) every pipeline
// stage appears in an export even before its first sample (a scrape that
// omits the emulate stage because no frame was emulated yet would read
// as a broken deployment, not a quiet one).
//
// Metric naming scheme (see DESIGN.md "Observability"):
//   senids_<area>_<what>[_total|_seconds|_bytes]{label="..."}
// Counters end in _total, histograms of latency in _seconds; the one
// label in use is stage="classify|reassemble|triage|extract|disasm|lift|
// match|emulate" on the per-stage latency family.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "obs/metrics.hpp"

namespace senids::obs {

/// The analysis stages of Figure 3 (plus the deep-analysis extension),
/// in pipeline order.
enum class Stage : std::uint8_t {
  kClassify = 0,   // stage (a): parse + classifier verdict
  kReassemble,     // stage (a): TCP stream assembly for one flushed flow
  kTriage,         // stage 0: prefilter screen ahead of stages (b)-(e)
  kExtract,        // stage (b): binary detection & extraction
  kDisasm,         // stage (c): candidate scan + execution tracing
  kLift,           // stage (d): x86 -> IR
  kMatch,          // stage (e): semantic template matching
  kEmulate,        // deep analysis: sandboxed execution
};
inline constexpr std::size_t kStageCount = 8;

[[nodiscard]] std::string_view stage_name(Stage stage) noexcept;

/// Handles into the process-wide registry for every engine-level metric.
struct PipelineMetrics {
  // Per-stage wall-clock latency (one observation per stage per unit;
  // classify observes per packet, reassemble per flushed flow).
  std::array<Histogram*, kStageCount> stage_seconds{};

  // Pipeline volume counters.
  Counter* packets;
  Counter* suspicious_packets;
  Counter* units;
  Counter* frames;
  Counter* bytes_analyzed;
  Counter* alerts;

  // Handoff queue between stage (a) and the worker pool.
  Gauge* queue_depth;
  Gauge* queue_depth_peak;  // high watermark over the process lifetime
  Gauge* queue_capacity;    // configured max_queued_units (0 = never ran)
  Gauge* queue_bytes;
  Counter* queue_pushed;
  Counter* queue_backpressure_waits;
  Histogram* queue_backpressure_wait_seconds;

  // Flow table occupancy / eviction.
  Gauge* flow_table_flows;
  Gauge* flow_table_max_flows;  // configured cap (0 = uncapped)
  Counter* flows_created;
  Counter* flows_evicted_idle;
  Counter* flows_evicted_overflow;
  Counter* streams_truncated;

  // Whole-unit analysis latency (stages (b)-(e) end to end, one
  // observation per unit; cache hits observe their replay cost, which is
  // the honest per-unit figure once the verdict cache is on).
  Histogram* unit_seconds;

  // Content-addressed verdict cache (src/cache). hits/misses/insertions/
  // evictions and the occupancy gauges are fed by the cache itself via
  // CacheMetrics; bypass and bytes_saved are engine-side decisions.
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* cache_bypass;
  Counter* cache_insertions;
  Counter* cache_evictions;
  Counter* cache_bytes_saved;
  Gauge* cache_entries;
  Gauge* cache_bytes;

  // IP defragmentation memory pressure.
  Counter* defrag_dropped;

  // Stage-0 triage tiers (src/triage): every screened unit is exactly one
  // of escalated / rejected. The triage stage-latency histogram is
  // stage_seconds[kTriage].
  Counter* triage_screened;
  Counter* triage_escalated;
  Counter* triage_rejected;
  Counter* triage_rejected_bytes;
};

/// Process-wide handles; registers every metric on first call.
PipelineMetrics& pipeline_metrics();

/// Per-shard handles (labelled shard="<index>") for the sharded stage-(a)
/// front end: dispatcher->shard queue depth plus shard-local volume. Kept
/// out of PipelineMetrics because the shard count is a runtime option.
struct ShardMetrics {
  Gauge* queue_depth;       // frames waiting in this shard's dispatch queue
  Gauge* queue_depth_peak;  // high watermark of that queue
  Counter* packets;         // frames classified by this shard
  Counter* units;           // analysis units this shard emitted
  Gauge* flows;             // live flows in this shard's flow table
};

/// Configured per-shard dispatch-queue capacity, shared by every shard
/// (unlabelled; 0 until an engine runs sharded). /healthz compares the
/// per-shard depth gauges against it.
Gauge& shard_queue_capacity_gauge();

/// Handles for shard `shard_index`; registers the labelled series on
/// first call per index and returns the same handles afterwards.
ShardMetrics shard_metrics(std::size_t shard_index);

}  // namespace senids::obs
