// Embedded HTTP/1.1 telemetry server: the runtime-visibility plane of
// the pipeline. Dependency-free (POSIX sockets only), one accept thread
// that handles connections sequentially with bounded read/write
// timeouts, bound to loopback by default. Endpoints:
//
//   /metrics  Prometheus text exposition of the whole metric registry.
//   /healthz  Liveness + readiness JSON. Readiness is derived from the
//             live gauges and the worker table: unit-queue saturation,
//             per-shard dispatch-queue saturation, flow-table occupancy
//             against its configured cap, and stale heartbeats from
//             active workers/shard consumers. 200 when ready, 503 with
//             the failing checks otherwise.
//   /statusz  JSON snapshot for humans and scripts: uptime, build/config
//             fingerprint, queue depths + high watermarks, per-shard
//             series, per-worker busy/idle attribution, verdict-cache
//             hit rate, unit-latency quantiles, flight-recorder state.
//   /tracez   Flight-recorder dump (recent rings + retained slow units).
//
// The server is pull-only and read-only: handlers snapshot the sharded
// registry exactly the way --metrics-out does, so scraping costs the
// pipeline nothing beyond the aggregation reads. It is started
// explicitly (senids_scan --telemetry-port, or embedders via start());
// the metric *content* honours the usual obs kill switches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace senids::obs {

/// Readiness thresholds for /healthz. A check only fires when its
/// inputs are meaningful (a capacity/cap gauge of 0 disables it).
struct HealthThresholds {
  /// Queue depth / capacity at or above this is "saturated".
  double queue_saturation = 0.90;
  /// Live flows / configured max_flows at or above this is "full".
  double flow_occupancy = 0.95;
  /// An *active* worker slot whose last heartbeat is older than this
  /// many seconds counts as stalled.
  double heartbeat_stale_seconds = 10.0;
};

struct TelemetryOptions {
  /// Bind address; loopback by default — exposing /metrics beyond the
  /// host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see TelemetryServer::port()).
  std::uint16_t port = 0;
  /// Per-connection socket read/write timeout: a stalled scraper cannot
  /// hold the accept thread longer than roughly this bound per side.
  double handler_timeout_seconds = 2.0;
  /// Request size cap (request line + headers).
  std::size_t max_request_bytes = 4096;
  HealthThresholds health;
  /// Opaque build/config identity echoed in /statusz (senids_scan passes
  /// its config fingerprint hex).
  std::string build_info;
};

struct HealthReport {
  bool healthy = true;
  std::string json;  // {"status": ..., "checks": [...]}
};

/// Evaluate readiness from the live registry + worker table. Exposed
/// separately from the server so tests and embedders can consult the
/// same logic the endpoint serves.
[[nodiscard]] HealthReport evaluate_health(const HealthThresholds& thresholds);

/// The /statusz JSON document (see file comment for contents).
[[nodiscard]] std::string status_json(const std::string& build_info);

class TelemetryServer {
 public:
  /// Bind, listen, and start the accept thread. Returns nullptr (after
  /// logging the reason) when the socket cannot be bound — callers treat
  /// telemetry as optional, not fatal.
  static std::unique_ptr<TelemetryServer> start(TelemetryOptions options);

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;
  ~TelemetryServer();

  /// The bound port (the resolved one when options.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept;

  /// Stop accepting and join the accept thread. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Total requests answered (any status); for tests and /statusz.
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

 private:
  TelemetryServer();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace senids::obs
