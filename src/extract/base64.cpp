#include "extract/base64.hpp"

#include <array>

namespace senids::extract {

namespace {

constexpr std::array<std::int8_t, 256> make_decode_table() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  const char* alphabet =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  for (int i = 0; i < 64; ++i) t[static_cast<unsigned char>(alphabet[i])] = static_cast<std::int8_t>(i);
  return t;
}

constexpr auto kDecode = make_decode_table();

bool is_b64_char(std::uint8_t c) {
  return kDecode[c] >= 0 || c == '=' || c == '\r' || c == '\n';
}

}  // namespace

std::optional<util::Bytes> base64_decode(std::string_view text) {
  util::Bytes out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t acc = 0;
  int have = 0;
  int pad = 0;
  bool done = false;
  for (char c : text) {
    if (c == '\r' || c == '\n') continue;
    if (c == '=') {
      if (done) return std::nullopt;  // padding after the stream ended
      ++pad;
      acc <<= 6;
      ++have;
      if (have == 4) {
        out.push_back(static_cast<std::uint8_t>(acc >> 16));
        if (pad < 2) out.push_back(static_cast<std::uint8_t>(acc >> 8));
        done = true;  // padding terminates the stream; only CR/LF may follow
        have = 0;
      }
      continue;
    }
    if (pad > 0 || done) return std::nullopt;  // data after padding
    const std::int8_t v = kDecode[static_cast<unsigned char>(c)];
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    if (++have == 4) {
      out.push_back(static_cast<std::uint8_t>(acc >> 16));
      out.push_back(static_cast<std::uint8_t>(acc >> 8));
      out.push_back(static_cast<std::uint8_t>(acc));
      acc = 0;
      have = 0;
    }
  }
  if (have != 0) return std::nullopt;  // truncated quantum
  return out;
}

std::optional<Base64Region> find_base64_region(util::ByteView payload,
                                               std::size_t min_encoded_len,
                                               std::size_t min_decoded_len) {
  Base64Region best;
  std::size_t start = SIZE_MAX;
  auto consider = [&](std::size_t from, std::size_t to) {
    if (to - from < min_encoded_len || to - from <= best.length) return;
    std::string_view text(reinterpret_cast<const char*>(payload.data() + from), to - from);
    // Trim trailing partial quantum so mid-stream cut-offs still decode.
    auto decoded = base64_decode(text);
    if (!decoded) {
      // Retry without a trailing remainder of non-multiple-of-4 payload
      // characters (common when the region abuts other text).
      std::size_t payload_chars = 0;
      for (char c : text) {
        if (c != '\r' && c != '\n') ++payload_chars;
      }
      const std::size_t drop = payload_chars % 4;
      if (drop == 0) return;
      std::size_t removed = 0;
      std::size_t new_len = text.size();
      while (removed < drop && new_len > 0) {
        const char c = text[new_len - 1];
        if (c != '\r' && c != '\n') ++removed;
        --new_len;
      }
      decoded = base64_decode(text.substr(0, new_len));
      if (!decoded) return;
      to = from + new_len;
    }
    if (decoded->size() < min_decoded_len) return;
    best.offset = from;
    best.length = to - from;
    best.decoded = std::move(*decoded);
  };

  for (std::size_t i = 0; i <= payload.size(); ++i) {
    if (i < payload.size() && is_b64_char(payload[i])) {
      if (start == SIZE_MAX) start = i;
    } else if (start != SIZE_MAX) {
      consider(start, i);
      start = SIZE_MAX;
    }
  }
  if (best.decoded.empty()) return std::nullopt;
  return best;
}

}  // namespace senids::extract
