#include "extract/extractor.hpp"

#include "extract/base64.hpp"
#include "extract/heuristics.hpp"
#include "extract/unicode.hpp"

namespace senids::extract {

std::string_view frame_reason_name(FrameReason r) noexcept {
  switch (r) {
    case FrameReason::kUnicodeDecoded: return "unicode-decoded";
    case FrameReason::kAfterRepetition: return "after-repetition";
    case FrameReason::kNopSled: return "nop-sled";
    case FrameReason::kBinaryRegion: return "binary-region";
    case FrameReason::kReturnRegion: return "return-region";
    case FrameReason::kWholePayload: return "whole-payload";
    case FrameReason::kBase64Decoded: return "base64-decoded";
    case FrameReason::kEmulatedDecode: return "emulated-decode";
    case FrameReason::kEmulatedBehavior: return "emulated-behavior";
  }
  return "?";
}

std::vector<BinaryFrame> BinaryExtractor::extract(util::ByteView payload) const {
  std::vector<BinaryFrame> frames;
  extract(payload, frames);
  return frames;
}

void BinaryExtractor::extract(util::ByteView payload, std::vector<BinaryFrame>& frames) const {
  frames.clear();
  if (payload.empty()) return;

  if (options_.extract_all) {
    frames.push_back(BinaryFrame{util::Bytes(payload.begin(), payload.end()), 0,
                                 FrameReason::kWholePayload});
    return;
  }

  // 1. %u-encoded content: translate to its binary form. This is how the
  //    Code Red II vector reaches the disassembler.
  UnicodeDecodeResult uni = decode_u_escapes(payload);
  if (uni.escape_count >= options_.min_unicode_escapes) {
    frames.push_back(
        BinaryFrame{std::move(uni.decoded), uni.first_offset, FrameReason::kUnicodeDecoded});
  }

  // 2. Suspicious repetition: overflow filler; the exploit content sits
  //    at/after the run, so extract from the run's end.
  if (auto rep = longest_repetition(payload, options_.min_repetition)) {
    const std::size_t from = rep->offset + rep->length;
    if (from < payload.size()) {
      frames.push_back(BinaryFrame{
          util::Bytes(payload.begin() + static_cast<std::ptrdiff_t>(from), payload.end()),
          from, FrameReason::kAfterRepetition});
    }
  }

  // 3. Variant NOP sled: extract from the sled start (the decoder and
  //    payload follow it).
  if (auto sled = longest_nop_sled(payload, options_.min_sled)) {
    frames.push_back(BinaryFrame{
        util::Bytes(payload.begin() + static_cast<std::ptrdiff_t>(sled->offset),
                    payload.end()),
        sled->offset, FrameReason::kNopSled});
  }

  // 4. Return-address region (Figure 4): repeated 4-byte addresses whose
  //    low byte varies mark the overwrite; the shellcode precedes it, so
  //    extract everything up to the region.
  if (auto ret = longest_return_region(payload, options_.min_return_addresses)) {
    if (ret->offset > 0) {
      frames.push_back(BinaryFrame{
          util::Bytes(payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(ret->offset)),
          0, FrameReason::kReturnRegion});
    }
  }

  // 5. Base64/MIME attachment: translate to binary (email-worm vector).
  if (auto b64 = find_base64_region(payload, options_.min_base64_encoded,
                                    options_.min_base64_decoded)) {
    frames.push_back(
        BinaryFrame{std::move(b64->decoded), b64->offset, FrameReason::kBase64Decoded});
  }

  // 6. Dense binary region inside an otherwise textual payload.
  if (auto bin = longest_binary_region(payload, options_.min_binary_region)) {
    // Extend to the payload end: decoders frequently trail their encoded
    // data, and the semantic stage is cheap once a frame is this small.
    frames.push_back(BinaryFrame{
        util::Bytes(payload.begin() + static_cast<std::ptrdiff_t>(bin->offset),
                    payload.end()),
        bin->offset, FrameReason::kBinaryRegion});
  }
}

}  // namespace senids::extract
