// Minimal HTTP/1.x request-line and header parser. The extractor uses it
// to distinguish acceptable protocol usage from suspicious repetition
// inside an otherwise well-formed request (the Code Red II shape:
// legitimate GET, hostile query string).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace senids::extract {

struct HttpRequest {
  std::string method;
  std::string target;   // full request-target, query string included
  std::string version;  // "HTTP/1.0" etc.
  std::vector<std::pair<std::string, std::string>> headers;
  std::size_t body_offset = 0;  // offset of the byte after the header block
};

/// Parse an HTTP request from the start of `payload`. Tolerates a missing
/// header terminator (truncated capture) by consuming what is present.
/// Returns nullopt when the first line is not a plausible request line.
std::optional<HttpRequest> parse_http_request(util::ByteView payload);

}  // namespace senids::extract
