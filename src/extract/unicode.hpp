// %uXXXX escape decoding (IIS "wide" URL encoding). Code Red II delivers
// its shellcode this way; the extractor translates it "into an
// appropriate binary form, for further analysis" (Section 4.2).
#pragma once

#include "util/bytes.hpp"

namespace senids::extract {

struct UnicodeDecodeResult {
  util::Bytes decoded;       // binary bytes carried by the escapes
  std::size_t escape_count = 0;
  std::size_t first_offset = 0;  // offset of the first escape in the input
};

/// Decode every %uXXXX escape in `payload` (case-insensitive hex). Each
/// escape contributes its two bytes little-endian (%u6858 -> 58 68), and
/// plain %XX escapes contribute one byte. Non-escape bytes between
/// escapes are skipped, so the result is the concatenated binary stream
/// the victim process would have materialized.
UnicodeDecodeResult decode_u_escapes(util::ByteView payload);

}  // namespace senids::extract
