#include "extract/unicode.hpp"

namespace senids::extract {

namespace {
int hex_val(std::uint8_t c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

UnicodeDecodeResult decode_u_escapes(util::ByteView payload) {
  UnicodeDecodeResult r;
  bool first = true;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] != '%') continue;
    if (i + 5 < payload.size() && (payload[i + 1] == 'u' || payload[i + 1] == 'U')) {
      const int h3 = hex_val(payload[i + 2]);
      const int h2 = hex_val(payload[i + 3]);
      const int h1 = hex_val(payload[i + 4]);
      const int h0 = hex_val(payload[i + 5]);
      if (h3 >= 0 && h2 >= 0 && h1 >= 0 && h0 >= 0) {
        if (first) {
          r.first_offset = i;
          first = false;
        }
        // %uABCD is the 16-bit value 0xABCD, materialized little-endian.
        r.decoded.push_back(static_cast<std::uint8_t>((h1 << 4) | h0));
        r.decoded.push_back(static_cast<std::uint8_t>((h3 << 4) | h2));
        ++r.escape_count;
        i += 5;
        continue;
      }
    }
    if (i + 2 < payload.size()) {
      const int h1 = hex_val(payload[i + 1]);
      const int h0 = hex_val(payload[i + 2]);
      if (h1 >= 0 && h0 >= 0) {
        if (first) {
          r.first_offset = i;
          first = false;
        }
        r.decoded.push_back(static_cast<std::uint8_t>((h1 << 4) | h0));
        ++r.escape_count;
        i += 2;
      }
    }
  }
  return r;
}

}  // namespace senids::extract
