// Payload heuristics backing binary detection: suspicious repetition
// (overflow filler), NOP-like sleds, and binary-density regions.
#pragma once

#include <optional>

#include "util/bytes.hpp"

namespace senids::extract {

struct Run {
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Longest run of one identical byte (the 'X' filler of Figure 5, or the
/// classic 0x90 sled). Returns nullopt when below `min_len`.
std::optional<Run> longest_repetition(util::ByteView payload, std::size_t min_len);

/// Longest run of one-byte NOP-like opcodes (the variant sled emitted by
/// polymorphic engines — Section 4.2's "instructions that have NOP-like
/// behavior"). Returns nullopt when below `min_len`.
std::optional<Run> longest_nop_sled(util::ByteView payload, std::size_t min_len);

/// Longest region that is predominantly non-printable ("binary-looking"),
/// allowing short printable gaps. Returns nullopt when below `min_len`.
std::optional<Run> longest_binary_region(util::ByteView payload, std::size_t min_len,
                                         std::size_t max_printable_gap = 4);

/// Longest run of consecutive 4-byte little-endian values sharing their
/// three high bytes (the low byte may vary): the return-address region of
/// Figure 4 — "only the least significant byte can be varied, since the
/// return address must point back to a valid address in the buffer."
/// Returns nullopt below `min_count` repeats.
std::optional<Run> longest_return_region(util::ByteView payload,
                                         std::size_t min_count = 4);

/// True if the byte is one of the single-byte x86 instructions
/// polymorphic sled generators draw from.
bool is_nop_like(std::uint8_t b) noexcept;

}  // namespace senids::extract
