#include "extract/heuristics.hpp"

#include <cctype>

namespace senids::extract {

std::optional<Run> longest_repetition(util::ByteView payload, std::size_t min_len) {
  Run best;
  std::size_t i = 0;
  while (i < payload.size()) {
    std::size_t j = i + 1;
    while (j < payload.size() && payload[j] == payload[i]) ++j;
    if (j - i > best.length) best = Run{i, j - i};
    i = j;
  }
  if (best.length < min_len) return std::nullopt;
  return best;
}

bool is_nop_like(std::uint8_t b) noexcept {
  switch (b) {
    case 0x90:  // nop
    case 0xF5:  // cmc
    case 0xF8:  // clc
    case 0xF9:  // stc
    case 0xFC:  // cld
    case 0xFD:  // std
    case 0x98:  // cwde
    case 0x99:  // cdq
    case 0x27:  // daa
    case 0x2F:  // das
    case 0x37:  // aaa
    case 0x3F:  // aas
    case 0x9B:  // wait
    case 0x9E:  // sahf
    case 0x9F:  // lahf
    case 0xD6:  // salc
      return true;
    default:
      // inc/dec r32 and one-byte push/pop are also common sled filler.
      return (b >= 0x40 && b <= 0x4F) || (b >= 0x50 && b <= 0x5F);
  }
}

std::optional<Run> longest_nop_sled(util::ByteView payload, std::size_t min_len) {
  Run best;
  std::size_t start = 0;
  std::size_t i = 0;
  while (i <= payload.size()) {
    if (i == payload.size() || !is_nop_like(payload[i])) {
      if (i - start > best.length) best = Run{start, i - start};
      start = i + 1;
    }
    ++i;
  }
  if (best.length < min_len) return std::nullopt;
  return best;
}

std::optional<Run> longest_return_region(util::ByteView payload,
                                         std::size_t min_count) {
  Run best;
  // Degenerate-run filter: when the three high bytes are one repeated
  // byte, the "region" is an identical-byte filler unless a meaningful
  // fraction of the low bytes actually differ from it (repetition runs
  // are the filler heuristic's business, not ours).
  auto plausible = [&payload](std::size_t run_start, std::size_t count) {
    const std::uint8_t h1 = payload[run_start + 1];
    const std::uint8_t h2 = payload[run_start + 2];
    const std::uint8_t h3 = payload[run_start + 3];
    if (h1 != h2 || h2 != h3) return true;
    std::size_t differing = 0;
    for (std::size_t k = 0; k < count; ++k) {
      if (payload[run_start + 4 * k] != h1) ++differing;
    }
    return differing * 4 >= count;  // at least a quarter of lows differ
  };
  // For each alignment phase, walk dwords and count runs whose bytes
  // 1..3 (the high 24 bits, little-endian) repeat.
  for (std::size_t phase = 0; phase < 4 && phase + 8 <= payload.size(); ++phase) {
    std::size_t run_start = phase;
    std::size_t count = 1;
    auto consider = [&] {
      if (count >= min_count && count * 4 > best.length &&
          plausible(run_start, count)) {
        best = Run{run_start, count * 4};
      }
    };
    for (std::size_t i = phase + 4; i + 4 <= payload.size(); i += 4) {
      const bool same = payload[i + 1] == payload[run_start + 1] &&
                        payload[i + 2] == payload[run_start + 2] &&
                        payload[i + 3] == payload[run_start + 3];
      if (same) {
        ++count;
      } else {
        consider();
        run_start = i;
        count = 1;
      }
    }
    consider();
  }
  if (best.length == 0) return std::nullopt;
  return best;
}

std::optional<Run> longest_binary_region(util::ByteView payload, std::size_t min_len,
                                         std::size_t max_printable_gap) {
  auto printable = [](std::uint8_t b) {
    return b == '\t' || b == '\r' || b == '\n' || (b >= 0x20 && b < 0x7f);
  };
  Run best;
  std::size_t start = SIZE_MAX;
  std::size_t gap = 0;
  std::size_t last_binary = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (!printable(payload[i])) {
      if (start == SIZE_MAX) start = i;
      last_binary = i;
      gap = 0;
    } else if (start != SIZE_MAX) {
      if (++gap > max_printable_gap) {
        const std::size_t len = last_binary + 1 - start;
        if (len > best.length) best = Run{start, len};
        start = SIZE_MAX;
        gap = 0;
      }
    }
  }
  if (start != SIZE_MAX) {
    const std::size_t len = last_binary + 1 - start;
    if (len > best.length) best = Run{start, len};
  }
  if (best.length < min_len) return std::nullopt;
  return best;
}

}  // namespace senids::extract
