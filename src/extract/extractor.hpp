// Binary detection and extraction (Section 4.2): locate the approximate
// region of a payload that carries binary content and hand it to the
// disassembler as a "binary frame". This stage is what keeps the
// CPU-intensive semantic stages off ordinary traffic; it can be bypassed
// (extract_all) at a large performance cost — the paper's remark, and
// our bench_ablation_extraction experiment.
#pragma once

#include <vector>

#include "util/bytes.hpp"

namespace senids::extract {

enum class FrameReason : std::uint8_t {
  kUnicodeDecoded,   // %uXXXX escapes translated to binary
  kAfterRepetition,  // content following an overflow filler run
  kNopSled,          // variant NOP sled onward
  kBinaryRegion,     // dense non-printable region
  kReturnRegion,     // repeated return addresses (Figure 4 invariant)
  kWholePayload,     // extraction bypassed
  kBase64Decoded,    // MIME/base64 attachment translated to binary
  kEmulatedDecode,   // frame decrypted by the emulator (deep analysis)
  kEmulatedBehavior, // behaviour observed while emulating the frame
};

std::string_view frame_reason_name(FrameReason r) noexcept;

struct BinaryFrame {
  util::Bytes data;
  std::size_t src_offset = 0;  // where in the payload the frame began
  FrameReason reason{};
};

struct ExtractorOptions {
  std::size_t min_unicode_escapes = 8;
  std::size_t min_repetition = 32;
  std::size_t min_sled = 12;
  std::size_t min_binary_region = 24;
  std::size_t min_return_addresses = 6;  // repeated dwords in the ret region
  std::size_t min_base64_encoded = 96;   // encoded chars
  std::size_t min_base64_decoded = 64;   // decoded bytes
  /// Bypass mode: emit the whole payload as one frame regardless of the
  /// heuristics (used by the FP evaluation and the ablation bench).
  bool extract_all = false;
};

class BinaryExtractor {
 public:
  explicit BinaryExtractor(ExtractorOptions options = ExtractorOptions{})
      : options_(options) {}

  /// Extract candidate binary frames from one application payload.
  /// Returns an empty vector when nothing looks like binary content —
  /// that payload is pruned from the expensive pipeline stages.
  std::vector<BinaryFrame> extract(util::ByteView payload) const;

  /// Buffer-reusing form: clears and refills `out` in place so a worker
  /// analyzing a stream of payloads reuses one frame vector (the frame
  /// byte buffers themselves are per-payload — they are decoded or
  /// sliced content and move on into analysis).
  void extract(util::ByteView payload, std::vector<BinaryFrame>& out) const;

  [[nodiscard]] const ExtractorOptions& options() const noexcept { return options_; }

 private:
  ExtractorOptions options_;
};

}  // namespace senids::extract
