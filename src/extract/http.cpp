#include "extract/http.hpp"

#include <algorithm>
#include <cctype>

namespace senids::extract {

namespace {
const char* const kMethods[] = {"GET",    "POST",  "HEAD",    "PUT",
                                "DELETE", "TRACE", "OPTIONS", "CONNECT"};

bool is_token_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}
}  // namespace

std::optional<HttpRequest> parse_http_request(util::ByteView payload) {
  const std::string_view text(reinterpret_cast<const char*>(payload.data()), payload.size());

  // Request line: METHOD SP target SP HTTP/x.y CRLF (LF tolerated).
  const std::size_t line_end = text.find('\n');
  const std::string_view line =
      text.substr(0, line_end == std::string_view::npos ? text.size() : line_end);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::string_view method = line.substr(0, sp1);
  if (std::none_of(std::begin(kMethods), std::end(kMethods),
                   [&](const char* m) { return method == m; })) {
    return std::nullopt;
  }
  // The target may itself contain spaces in malformed exploit requests;
  // take the *last* token as the version when it looks like HTTP/, else
  // treat everything after the method as the target.
  std::size_t ver_pos = line.rfind(" HTTP/");
  HttpRequest req;
  req.method = std::string(method);
  if (ver_pos != std::string_view::npos && ver_pos > sp1) {
    req.target = std::string(line.substr(sp1 + 1, ver_pos - sp1 - 1));
    std::string_view ver = line.substr(ver_pos + 1);
    while (!ver.empty() && (ver.back() == '\r' || ver.back() == ' ')) ver.remove_suffix(1);
    req.version = std::string(ver);
  } else {
    std::string_view target = line.substr(sp1 + 1);
    while (!target.empty() && (target.back() == '\r' || target.back() == ' ')) {
      target.remove_suffix(1);
    }
    req.target = std::string(target);
  }

  // Headers until a blank line.
  std::size_t pos = line_end == std::string_view::npos ? text.size() : line_end + 1;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view hline = text.substr(pos, eol - pos);
    if (!hline.empty() && hline.back() == '\r') hline.remove_suffix(1);
    pos = eol + 1;
    if (hline.empty()) break;  // end of headers
    const std::size_t colon = hline.find(':');
    if (colon == std::string_view::npos || colon == 0 ||
        !std::all_of(hline.begin(), hline.begin() + static_cast<std::ptrdiff_t>(colon),
                     is_token_char)) {
      // Not a header: stop parsing, body starts here.
      pos -= hline.size() + 1;
      break;
    }
    std::string_view value = hline.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    req.headers.emplace_back(std::string(hline.substr(0, colon)), std::string(value));
  }
  req.body_offset = std::min(pos, text.size());
  return req;
}

}  // namespace senids::extract
