// Base64 region detection and decoding. Email worms ship executables as
// base64 MIME attachments; translating them "into an appropriate binary
// form" extends the Section 4.2 extraction stage to the email-worm
// family the paper names as future work.
#pragma once

#include <optional>

#include "util/bytes.hpp"

namespace senids::extract {

struct Base64Region {
  std::size_t offset = 0;  // where the encoded text begins in the input
  std::size_t length = 0;  // encoded length (incl. embedded CRLFs)
  util::Bytes decoded;
};

/// Decode standard base64 (ignoring embedded CR/LF); nullopt on any other
/// character or broken padding.
std::optional<util::Bytes> base64_decode(std::string_view text);

/// Find the longest plausible base64-encoded region: >= min_encoded_len
/// characters drawn from the base64 alphabet (line breaks allowed),
/// decodable, and yielding at least min_decoded_len bytes.
std::optional<Base64Region> find_base64_region(util::ByteView payload,
                                               std::size_t min_encoded_len = 64,
                                               std::size_t min_decoded_len = 32);

}  // namespace senids::extract
