// IA-32 register model. Registers are identified by (family, width) where
// the family is the underlying 32-bit architectural register; this makes
// aliasing queries (does writing AL clobber EAX?) trivial, which the
// def-use analysis in the semantic matcher depends on.
#pragma once

#include <cstdint>
#include <string_view>

namespace senids::x86 {

/// The eight GPR families, in standard encoding order.
enum class RegFamily : std::uint8_t { kAx, kCx, kDx, kBx, kSp, kBp, kSi, kDi };

enum class RegWidth : std::uint8_t { k8Lo, k8Hi, k16, k32 };

struct Reg {
  RegFamily family{};
  RegWidth width{};

  friend bool operator==(const Reg&, const Reg&) = default;

  /// True if the two registers share storage (e.g. AL vs EAX, but not
  /// AL vs AH? AH and AL share EAX but not each other's bits; for clobber
  /// analysis we treat any same-family pair as aliasing, which is sound).
  [[nodiscard]] bool aliases(const Reg& other) const noexcept {
    return family == other.family;
  }

  [[nodiscard]] std::string_view name() const noexcept;
};

/// Decode-table constructors: index is the 3-bit register field.
Reg reg32(unsigned index) noexcept;
Reg reg16(unsigned index) noexcept;
Reg reg8(unsigned index) noexcept;  // AL,CL,DL,BL,AH,CH,DH,BH encoding order

inline constexpr Reg kEax{RegFamily::kAx, RegWidth::k32};
inline constexpr Reg kEcx{RegFamily::kCx, RegWidth::k32};
inline constexpr Reg kEdx{RegFamily::kDx, RegWidth::k32};
inline constexpr Reg kEbx{RegFamily::kBx, RegWidth::k32};
inline constexpr Reg kEsp{RegFamily::kSp, RegWidth::k32};
inline constexpr Reg kEbp{RegFamily::kBp, RegWidth::k32};
inline constexpr Reg kEsi{RegFamily::kSi, RegWidth::k32};
inline constexpr Reg kEdi{RegFamily::kDi, RegWidth::k32};
inline constexpr Reg kAl{RegFamily::kAx, RegWidth::k8Lo};
inline constexpr Reg kCl{RegFamily::kCx, RegWidth::k8Lo};

/// Number of bits in a register of the given width.
unsigned width_bits(RegWidth w) noexcept;

}  // namespace senids::x86
