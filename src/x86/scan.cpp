#include "x86/scan.hpp"

#include <unordered_set>

namespace senids::x86 {

std::vector<CodeRun> find_code_runs(util::ByteView code, std::size_t min_insns) {
  const std::size_t n = code.size();
  if (n == 0) return {};

  // run_len[i]: number of instructions decodable linearly from offset i.
  // next[i]: offset after the instruction at i (0 when invalid).
  std::vector<std::uint32_t> run_len(n, 0);
  std::vector<std::uint32_t> next(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    Instruction insn = decode(code, i);
    if (!insn.valid()) continue;
    const std::size_t after = insn.end_offset();
    next[i] = static_cast<std::uint32_t>(after);
    run_len[i] = 1 + (after < n ? run_len[after] : 0);
  }

  // Emit runs that are not a tail of an earlier (longer) run with the same
  // synchronization: offset i is a tail iff some j<i decodes through i.
  std::vector<bool> is_tail(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (run_len[i] != 0 && next[i] < n && run_len[next[i]] != 0) {
      is_tail[next[i]] = true;
    }
  }

  std::vector<CodeRun> runs;
  for (std::size_t i = 0; i < n; ++i) {
    if (run_len[i] >= min_insns && !is_tail[i]) {
      // Walk to compute byte length of the run.
      std::size_t pos = i;
      std::size_t count = 0;
      while (pos < n && run_len[pos] != 0) {
        ++count;
        pos = next[pos];
      }
      runs.push_back(CodeRun{i, count, pos - i});
    }
  }
  return runs;
}

std::vector<Instruction> execution_trace(util::ByteView code, std::size_t entry,
                                         std::size_t max_insns) {
  std::vector<Instruction> trace;
  std::unordered_set<std::size_t> visited;
  std::size_t pc = entry;

  while (pc < code.size() && trace.size() < max_insns) {
    if (!visited.insert(pc).second) break;  // loop closed: stream complete
    Instruction insn = decode(code, pc);
    if (!insn.valid()) break;
    const Instruction& placed = trace.emplace_back(std::move(insn));

    if (placed.mnemonic == Mnemonic::kJmp || placed.mnemonic == Mnemonic::kCall) {
      // Calls are followed like jumps: shellcode uses call for GetPC
      // (jmp/call/pop), and the interesting flow continues at the target.
      auto target = placed.branch_target();
      if (!target || *target >= code.size()) break;  // indirect or escaping
      pc = *target;
      continue;
    }
    if (placed.ends_flow()) break;
    pc = placed.end_offset();
  }
  return trace;
}

}  // namespace senids::x86
