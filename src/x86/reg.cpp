#include "x86/reg.hpp"

namespace senids::x86 {

namespace {
constexpr std::string_view kNames32[] = {"eax", "ecx", "edx", "ebx",
                                         "esp", "ebp", "esi", "edi"};
constexpr std::string_view kNames16[] = {"ax", "cx", "dx", "bx", "sp", "bp", "si", "di"};
constexpr std::string_view kNames8Lo[] = {"al", "cl", "dl", "bl"};
constexpr std::string_view kNames8Hi[] = {"ah", "ch", "dh", "bh"};
}  // namespace

std::string_view Reg::name() const noexcept {
  const auto f = static_cast<unsigned>(family);
  switch (width) {
    case RegWidth::k32:
      return kNames32[f];
    case RegWidth::k16:
      return kNames16[f];
    case RegWidth::k8Lo:
      return kNames8Lo[f & 3];
    case RegWidth::k8Hi:
      return kNames8Hi[f & 3];
  }
  return "?";
}

Reg reg32(unsigned index) noexcept {
  return Reg{static_cast<RegFamily>(index & 7), RegWidth::k32};
}

Reg reg16(unsigned index) noexcept {
  return Reg{static_cast<RegFamily>(index & 7), RegWidth::k16};
}

Reg reg8(unsigned index) noexcept {
  // Encodings 0-3 are AL,CL,DL,BL; 4-7 are AH,CH,DH,BH which live in the
  // AX..BX families.
  index &= 7;
  if (index < 4) return Reg{static_cast<RegFamily>(index), RegWidth::k8Lo};
  return Reg{static_cast<RegFamily>(index - 4), RegWidth::k8Hi};
}

unsigned width_bits(RegWidth w) noexcept {
  switch (w) {
    case RegWidth::k8Lo:
    case RegWidth::k8Hi:
      return 8;
    case RegWidth::k16:
      return 16;
    case RegWidth::k32:
      return 32;
  }
  return 0;
}

}  // namespace senids::x86
