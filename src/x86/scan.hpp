// Shellcode-oriented code discovery. Network payloads carry code at
// unknown offsets, so the scanner (a) finds plausible decode runs via a
// right-to-left dynamic program over the whole buffer, and (b) produces
// the *execution-order* instruction stream from an entry point by
// following unconditional jumps — which is exactly the normalization that
// defeats the out-of-order obfuscation of Figure 1(c) in the paper.
#pragma once

#include <vector>

#include "util/bytes.hpp"
#include "x86/decoder.hpp"

namespace senids::x86 {

/// A maximal linear decode run.
struct CodeRun {
  std::size_t start = 0;
  std::size_t insn_count = 0;
  std::size_t byte_len = 0;
};

/// Find decode runs of at least `min_insns` instructions. Runs contained
/// in a longer run (same synchronization) are suppressed, so the result
/// is a small set of candidate shellcode entry points.
std::vector<CodeRun> find_code_runs(util::ByteView code, std::size_t min_insns = 6);

/// Execution-order trace from `entry`: decodes, then follows unconditional
/// jmps with in-buffer targets; conditional branches and loops fall
/// through. Stops at invalid bytes, flow-ending instructions, buffer exit,
/// an already-visited offset (loop closure), or `max_insns`.
/// The returned sequence is the de-obfuscated instruction stream handed to
/// the IR lifter.
std::vector<Instruction> execution_trace(util::ByteView code, std::size_t entry,
                                         std::size_t max_insns = 4096);

}  // namespace senids::x86
