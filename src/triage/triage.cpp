#include "triage/triage.hpp"

#include <algorithm>
#include <array>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "extract/base64.hpp"
#include "extract/heuristics.hpp"
#include "extract/unicode.hpp"
#include "semantic/pattern.hpp"

namespace senids::triage {

namespace {

/// Everything the screen needs from one fused pass over the raw bytes.
/// Run lengths mirror the extractor heuristics exactly (first longest
/// run wins, strict '>'), so a below-threshold figure here implies the
/// corresponding heuristic cannot form a frame.
struct ScanStats {
  std::size_t rep_len = 0;     // longest identical-byte run
  std::size_t rep_end = 0;     // offset one past that run
  std::size_t sled_len = 0;    // longest NOP-like run
  std::size_t b64_len = 0;     // longest base64-alphabet run (incl. = CR LF)
  std::size_t binary_len = 0;  // longest binary region (printable gaps <= 4)
  std::size_t percent = 0;     // '%' bytes: upper bound on %u/%XX escapes
  std::size_t getpc_lead = 0;  // 0xE8/0xD9 bytes: gate for the GetPC probe
};

// One class-bit byte per input byte: the fused pass becomes a single
// table load plus branch-free run arithmetic, which is what keeps
// stage-0 at memory-scan speed (the naive per-byte branchy version
// mispredicts constantly on mixed text and runs ~10x slower).
constexpr std::uint8_t kClsNop = 1;        // extract::is_nop_like
constexpr std::uint8_t kClsB64 = 2;        // base64 alphabet incl. '=' CR LF
constexpr std::uint8_t kClsPrintable = 4;  // longest_binary_region's notion
constexpr std::uint8_t kClsPercent = 8;    // '%'
constexpr std::uint8_t kClsGetPcLead = 16; // 0xE8 (call) / 0xD9 (fnstenv)

const std::array<std::uint8_t, 256>& class_table() {
  static const std::array<std::uint8_t, 256> table = [] {
    std::array<std::uint8_t, 256> t{};
    for (int i = 0; i < 256; ++i) {
      const auto b = static_cast<std::uint8_t>(i);
      std::uint8_t cls = 0;
      if (extract::is_nop_like(b)) cls |= kClsNop;
      if ((b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z') || (b >= '0' && b <= '9') ||
          b == '+' || b == '/' || b == '=' || b == '\r' || b == '\n') {
        cls |= kClsB64;
      }
      if (b == '\t' || b == '\r' || b == '\n' || (b >= 0x20 && b < 0x7f)) {
        cls |= kClsPrintable;
      }
      if (b == '%') cls |= kClsPercent;
      if (b == 0xE8 || b == 0xD9) cls |= kClsGetPcLead;
      t[i] = cls;
    }
    return t;
  }();
  return table;
}

inline std::uint32_t ctz32(std::uint32_t v) noexcept {
  return static_cast<std::uint32_t>(__builtin_ctz(v));
}
inline std::uint32_t leading_ones(std::uint32_t m) noexcept {
  // Caller guarantees m != ~0u, so ~m is nonzero.
  return static_cast<std::uint32_t>(__builtin_clz(~m));
}

/// Longest same-class run, fed either one classified byte at a time or
/// one 32-bit class mask (bit i = byte base+i in class) at a time. The
/// mask form is what the SIMD path produces: runs are folded with
/// carry-in/carry-out across words so word feeding and byte feeding
/// give identical results.
struct RunTracker {
  std::size_t run = 0;
  std::size_t best = 0;

  void byte(bool in_class) noexcept {
    run = in_class ? run + 1 : 0;
    if (run > best) best = run;
  }
  void word(std::uint32_t m) noexcept {
    if (m == 0) {
      run = 0;
      return;
    }
    if (m == ~0u) {
      run += 32;
      if (run > best) best = run;
      return;
    }
    const std::size_t carry = run + ctz32(~m);
    if (carry > best) best = carry;
    std::uint32_t mm = m;
    std::size_t len = 0;
    while (mm) {
      mm &= mm << 1;
      ++len;
    }
    if (len > best) best = len;
    run = leading_ones(m);
  }
};

/// Longest equal-to-previous-byte run plus the offset one past its end,
/// with the extractor's first-longest-wins tie break (strict '>'). The
/// tracked run length is the count of eq bits; the byte run is one
/// longer.
struct RepTracker {
  std::size_t run = 0;
  std::size_t best = 0;
  std::size_t end = 0;  // offset one past the last byte of the best run

  void byte(bool eq, std::size_t i) noexcept {
    run = eq ? run + 1 : 0;
    if (run > best) {
      best = run;
      end = i + 1;
    }
  }
  void word(std::uint32_t m, std::size_t base) noexcept {
    if (m == 0) {
      run = 0;
      return;
    }
    if (m == ~0u) {
      run += 32;
      if (run > best) {
        best = run;
        end = base + 32;
      }
      return;
    }
    const std::uint32_t t = ctz32(~m);
    if (run + t > best) {
      best = run + t;
      end = base + t;
    }
    std::uint32_t mm = m;
    std::uint32_t last = 0;
    std::size_t len = 0;
    while (mm) {
      last = mm;
      mm &= mm << 1;
      ++len;
    }
    if (len > best) {
      best = len;
      end = base + ctz32(last) + 1;  // first (lowest) run of that length
    }
    run = leading_ones(m);
  }
};

/// Longest binary region: non-printable bytes bridged by gaps of at
/// most four printable bytes (longest_binary_region's rule). Only the
/// non-printable byte *positions* determine region extents, so the
/// SIMD path just feeds set bits of the non-printable mask.
struct BinTracker {
  std::size_t span_start = 0;
  std::size_t last_pos = 0;
  std::size_t best = 0;
  bool active = false;

  void close() noexcept {
    if (!active) return;
    const std::size_t len = last_pos + 1 - span_start;
    if (len > best) best = len;
    active = false;
  }
  void nonprintable_at(std::size_t pos) noexcept {
    if (active && pos - last_pos > 5) close();  // gap of >4 printables
    if (!active) {
      active = true;
      span_start = pos;
    }
    last_pos = pos;
  }
};

/// Shared scan state: the scalar path feeds bytes, the SIMD path feeds
/// 32-byte class masks; both land in the same trackers so any mix of
/// the two (prologue / blocks / tail) yields identical ScanStats.
struct Trackers {
  std::size_t percent = 0;
  std::size_t getpc_lead = 0;
  RepTracker rep;
  RunTracker sled;
  RunTracker b64;
  BinTracker bin;

  void byte(std::uint8_t b, std::uint8_t prev, std::size_t i,
            const std::uint8_t* cls_of) noexcept {
    const std::uint8_t cls = cls_of[b];
    percent += cls & kClsPercent ? 1 : 0;
    getpc_lead += cls & kClsGetPcLead ? 1 : 0;
    rep.byte(i > 0 && b == prev, i);
    sled.byte(cls & kClsNop);
    b64.byte(cls & kClsB64);
    if (!(cls & kClsPrintable)) bin.nonprintable_at(i);
  }

  ScanStats finalize(std::size_t n) noexcept {
    bin.close();
    ScanStats s;
    if (n == 0) return s;
    s.rep_len = rep.best + 1;
    s.rep_end = rep.best ? rep.end : 1;
    s.sled_len = sled.best;
    s.b64_len = b64.best;
    s.binary_len = bin.best;
    s.percent = percent;
    s.getpc_lead = getpc_lead;
    return s;
  }
};

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SENIDS_TRIAGE_AVX2 1

bool cpu_has_avx2() noexcept {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

/// AVX2 block scan over [begin, end) (both multiples of 32, begin >= 32
/// so the eq-mask can load at begin-1). Byte classes are resolved with
/// nibble-pair shuffles: a byte is in a class iff hi_lut[hi] &
/// lo_lut[lo] is nonzero, with one bit per (hi-set x lo-set) rectangle
/// of the class's byte set. NOP-like needs five rectangles, the base64
/// alphabet five; ranges and single bytes use compares directly.
__attribute__((target("avx2"))) void scan_blocks_avx2(const std::uint8_t* data,
                                                      std::size_t begin, std::size_t end,
                                                      Trackers& t) {
  // NOP-like rectangles (see extract::is_nop_like):
  //   bit0 hi{4,5} x lo{0..F}   inc/dec/push/pop r32
  //   bit1 hi{2,3} x lo{7,F}    daa das aaa aas
  //   bit2 hi{9}   x lo{0,8,9,B,E,F}  nop cwde cdq wait sahf lahf
  //   bit3 hi{D}   x lo{6}      salc
  //   bit4 hi{F}   x lo{5,8,9,C,D}    cmc clc stc cld std
  const __m256i nop_hi = _mm256_setr_epi8(0, 0, 2, 2, 1, 1, 0, 0, 0, 4, 0, 0, 0, 8, 0, 16,
                                          0, 0, 2, 2, 1, 1, 0, 0, 0, 4, 0, 0, 0, 8, 0, 16);
  const __m256i nop_lo = _mm256_setr_epi8(5, 1, 1, 1, 1, 17, 9, 3, 21, 21, 1, 5, 17, 17, 5, 7,
                                          5, 1, 1, 1, 1, 17, 9, 3, 21, 21, 1, 5, 17, 17, 5, 7);
  // Base64 alphabet rectangles (A-Z a-z 0-9 + / = CR LF):
  //   bit0 hi{4,6} x lo{1..F}   bit1 hi{5,7} x lo{0..A}
  //   bit2 hi{3} x lo{0..9,D}   bit3 hi{2} x lo{B,F}   bit4 hi{0} x lo{A,D}
  const __m256i b64_hi = _mm256_setr_epi8(16, 0, 8, 4, 1, 2, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0,
                                          16, 0, 8, 4, 1, 2, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0);
  const __m256i b64_lo = _mm256_setr_epi8(6, 7, 7, 7, 7, 7, 7, 7, 7, 7, 19, 9, 1, 21, 1, 9,
                                          6, 7, 7, 7, 7, 7, 7, 7, 7, 7, 19, 9, 1, 21, 1, 9);
  const __m256i low_nibble = _mm256_set1_epi8(0x0F);
  const __m256i zero = _mm256_setzero_si256();

  for (std::size_t base = begin; base < end; base += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + base));
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low_nibble);
    const __m256i lo = _mm256_and_si256(x, low_nibble);

    const __m256i nop_bits = _mm256_and_si256(_mm256_shuffle_epi8(nop_hi, hi),
                                              _mm256_shuffle_epi8(nop_lo, lo));
    const std::uint32_t nop_mask = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(nop_bits, zero)));

    const __m256i b64_bits = _mm256_and_si256(_mm256_shuffle_epi8(b64_hi, hi),
                                              _mm256_shuffle_epi8(b64_lo, lo));
    const std::uint32_t b64_mask = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(b64_bits, zero)));

    // Printable: [0x20, 0x7E] plus tab/CR/LF. Bytes >= 0x80 are negative
    // in epi8 compares and fail the lower bound, as intended.
    const __m256i eq_tab = _mm256_cmpeq_epi8(x, _mm256_set1_epi8(0x09));
    const __m256i eq_lf = _mm256_cmpeq_epi8(x, _mm256_set1_epi8(0x0A));
    const __m256i eq_cr = _mm256_cmpeq_epi8(x, _mm256_set1_epi8(0x0D));
    const __m256i in_range =
        _mm256_and_si256(_mm256_cmpgt_epi8(x, _mm256_set1_epi8(0x1F)),
                         _mm256_cmpgt_epi8(_mm256_set1_epi8(0x7F), x));
    const __m256i printable = _mm256_or_si256(
        _mm256_or_si256(in_range, eq_tab), _mm256_or_si256(eq_lf, eq_cr));
    const std::uint32_t nonprint_mask =
        ~static_cast<std::uint32_t>(_mm256_movemask_epi8(printable));

    const std::uint32_t pct_mask = static_cast<std::uint32_t>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(x, _mm256_set1_epi8(0x25))));
    const std::uint32_t getpc_mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_or_si256(
            _mm256_cmpeq_epi8(x, _mm256_set1_epi8(static_cast<char>(0xE8))),
            _mm256_cmpeq_epi8(x, _mm256_set1_epi8(static_cast<char>(0xD9))))));

    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + base - 1));
    const std::uint32_t eq_mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, prev)));

    if (pct_mask) t.percent += static_cast<std::size_t>(__builtin_popcount(pct_mask));
    if (getpc_mask) {
      t.getpc_lead += static_cast<std::size_t>(__builtin_popcount(getpc_mask));
    }
    t.rep.word(eq_mask, base);
    t.sled.word(nop_mask);
    t.b64.word(b64_mask);
    std::uint32_t np = nonprint_mask;
    while (np) {
      t.bin.nonprintable_at(base + ctz32(np));
      np &= np - 1;
    }
  }
}
#endif  // x86-64

ScanStats scan(util::ByteView payload, [[maybe_unused]] bool allow_simd = true) {
  Trackers t;
  const std::uint8_t* cls_of = class_table().data();
  const std::size_t n = payload.size();
  std::size_t i = 0;
#ifdef SENIDS_TRIAGE_AVX2
  if (allow_simd && n >= 96 && cpu_has_avx2()) {
    // Scalar prologue covers the first block (the SIMD eq-mask reads one
    // byte before each block, so blocks must start at offset >= 1); the
    // scalar tail picks up the last partial block.
    for (; i < 32; ++i) t.byte(payload[i], i ? payload[i - 1] : 0, i, cls_of);
    const std::size_t end = 32 + ((n - 32) & ~static_cast<std::size_t>(31));
    scan_blocks_avx2(payload.data(), 32, end, t);
    i = end;
  }
#endif
  for (; i < n; ++i) t.byte(payload[i], i ? payload[i - 1] : 0, i, cls_of);
  return t.finalize(n);
}

void collect_fixed_consts(const semantic::PatPtr& p, std::vector<util::Bytes>& out) {
  if (!p) return;
  if (p->kind == semantic::PatKind::kFixedConst) {
    const std::uint32_t v = p->fixed;
    out.push_back(util::Bytes{
        static_cast<std::uint8_t>(v & 0xff), static_cast<std::uint8_t>((v >> 8) & 0xff),
        static_cast<std::uint8_t>((v >> 16) & 0xff),
        static_cast<std::uint8_t>((v >> 24) & 0xff)});
  }
  collect_fixed_consts(p->a, out);
  collect_fixed_consts(p->b, out);
  collect_fixed_consts(p->base, out);
}

}  // namespace

namespace detail {

ScanProfile scan_profile(util::ByteView payload, bool allow_simd) {
  const ScanStats s = scan(payload, allow_simd);
  return ScanProfile{s.rep_len, s.rep_end, s.sled_len, s.b64_len,
                     s.binary_len, s.percent, s.getpc_lead};
}

}  // namespace detail

std::string_view triage_reason_name(TriageReason r) noexcept {
  switch (r) {
    case TriageReason::kForced: return "forced";
    case TriageReason::kExtractAll: return "extract-all";
    case TriageReason::kRepetitionRun: return "repetition-run";
    case TriageReason::kNopSled: return "nop-sled";
    case TriageReason::kReturnRegion: return "return-region";
    case TriageReason::kGetPcCode: return "getpc-code";
    case TriageReason::kLiteralMatch: return "literal-match";
    case TriageReason::kDecodedCodeEvidence: return "decoded-code-evidence";
    case TriageReason::kSpectrumAnomaly: return "spectrum-anomaly";
    case TriageReason::kEmptyUnit: return "empty-unit";
    case TriageReason::kNoFramesPossible: return "no-frames-possible";
    case TriageReason::kDataNoCodeEvidence: return "data-no-code-evidence";
  }
  return "?";
}

std::vector<util::Bytes> template_literals(
    const std::vector<semantic::Template>& templates) {
  std::vector<util::Bytes> out;
  for (const semantic::Template& t : templates) {
    for (const semantic::Stmt& stmt : t.stmts) {
      collect_fixed_consts(stmt.addr, out);
      collect_fixed_consts(stmt.value, out);
      if (stmt.kind == semantic::Stmt::Kind::kSyscall) {
        // int-vector statements pin the two-byte CD imm8 encoding. The
        // x86-64 `syscall` vector (0x100) has no int encoding and its
        // 0F 05 pair is too common in binary traffic to be a useful
        // literal, so those statements contribute strings only — keeping
        // the 32-bit literal set byte-identical.
        if (stmt.vector <= 0xff) {
          out.push_back(util::Bytes{0xCD, static_cast<std::uint8_t>(stmt.vector)});
        }
        if (!stmt.ebx_points_to.empty()) {
          out.emplace_back(stmt.ebx_points_to.begin(), stmt.ebx_points_to.end());
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool has_getpc_code(util::ByteView data) noexcept {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint8_t b = data[i];
    if (b == 0xE8 && i + 5 <= data.size()) {
      const std::uint32_t disp = static_cast<std::uint32_t>(data[i + 1]) |
                                 (static_cast<std::uint32_t>(data[i + 2]) << 8) |
                                 (static_cast<std::uint32_t>(data[i + 3]) << 16) |
                                 (static_cast<std::uint32_t>(data[i + 4]) << 24);
      // |disp| <= 0x1000, branch-free on the unsigned representation.
      if (disp + 0x1000u <= 0x2000u) return true;
    }
    if (b == 0xD9 && i + 4 <= data.size() && data[i + 1] == 0x74 && data[i + 2] == 0x24 &&
        data[i + 3] == 0xF4) {
      return true;  // fnstenv [esp-12]
    }
  }
  return false;
}

TriageFilter::TriageFilter(TriageOptions options, extract::ExtractorOptions extractor,
                           const std::vector<semantic::Template>& templates)
    : options_(std::move(options)), extractor_(extractor) {
  for (const util::Bytes& lit : template_literals(templates)) {
    literals_.add_pattern(lit);
  }
  literals_.build();
}

bool TriageFilter::code_evidence(util::ByteView data) const {
  // Same probes the raw-byte path runs, re-applied to decoded bytes.
  // The fused scan supplies the run lengths; the GetPC walk only runs
  // when the scan saw at least one candidate lead byte.
  const ScanStats s = scan(data);
  if (s.sled_len >= extractor_.min_sled) return true;
  if (s.rep_len >= extractor_.min_repetition && s.rep_end < data.size()) return true;
  if (s.getpc_lead > 0 && has_getpc_code(data)) return true;
  if (extract::longest_return_region(data, extractor_.min_return_addresses)) return true;
  return literals_.matches_any(data);
}

TriageDecision TriageFilter::screen(util::ByteView payload, std::uint16_t dst_port) const {
  if (options_.mode == TriageMode::kForceEscalate) {
    return {true, TriageReason::kForced};
  }
  if (extractor_.extract_all) {
    // Bypass mode frames every payload whole; nothing can be rejected.
    return {true, TriageReason::kExtractAll};
  }
  if (payload.empty()) {
    return {false, TriageReason::kEmptyUnit};
  }

  const ScanStats s = scan(payload);

  // Code probes over the raw bytes, cheapest first. Any hit escalates:
  // the matching extractor heuristic would form a frame (or, for GetPC /
  // literals, the analyzer could find matching code inside one).
  if (s.rep_len >= extractor_.min_repetition && s.rep_end < payload.size()) {
    return {true, TriageReason::kRepetitionRun};
  }
  if (s.sled_len >= extractor_.min_sled) {
    return {true, TriageReason::kNopSled};
  }
  if (s.getpc_lead > 0 && has_getpc_code(payload)) {
    return {true, TriageReason::kGetPcCode};
  }
  if (extract::longest_return_region(payload, extractor_.min_return_addresses)) {
    return {true, TriageReason::kReturnRegion};
  }
  if (literals_.matches_any(payload)) {
    return {true, TriageReason::kLiteralMatch};
  }
  if (options_.spectrum && options_.spectrum->is_anomalous(payload, dst_port)) {
    return {true, TriageReason::kSpectrumAnomaly};
  }

  // Data-shaped frame sources: decode exactly what the extractor would
  // and re-run the code probes over the bytes the analyzer would see.
  bool data_frames = false;
  if (s.percent >= extractor_.min_unicode_escapes) {
    const extract::UnicodeDecodeResult uni = extract::decode_u_escapes(payload);
    if (uni.escape_count >= extractor_.min_unicode_escapes) {
      if (code_evidence(uni.decoded)) {
        return {true, TriageReason::kDecodedCodeEvidence};
      }
      data_frames = true;
    }
  }
  if (s.b64_len >= extractor_.min_base64_encoded) {
    if (auto region = extract::find_base64_region(payload, extractor_.min_base64_encoded,
                                                  extractor_.min_base64_decoded)) {
      if (code_evidence(region->decoded)) {
        return {true, TriageReason::kDecodedCodeEvidence};
      }
      data_frames = true;
    }
  }
  if (s.binary_len >= extractor_.min_binary_region) data_frames = true;

  // No probe fired. Either no heuristic can form a frame at all (provably
  // alert-free) or only data-shaped frames are possible and none of them
  // shows code evidence (empirically alert-free; differential-tested).
  return data_frames ? TriageDecision{false, TriageReason::kDataNoCodeEvidence}
                     : TriageDecision{false, TriageReason::kNoFramesPossible};
}

}  // namespace senids::triage
