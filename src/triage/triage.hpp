// Stage-0 triage: a cheap prefilter screening every analysis unit before
// the stage (b)-(e) pipeline (and before the verdict cache's SHA-256 —
// hashing at memory bandwidth would cap the fast path). The screen runs a
// handful of O(n) byte passes — run statistics mirroring the extractor
// heuristics, a GetPC code probe, an Aho-Corasick prefilter over the
// template library's fixed byte literals, and optionally a PAYL byte-
// spectrum model — and only escalates units that show code evidence.
//
// Escalation policy (conservative, escalate-on-doubt):
//
//   * A unit is rejected as kNoFramesPossible only when *no* extractor
//     heuristic can fire on it, which provably implies zero frames and
//     therefore zero alerts (templates and emulation only ever see
//     frames). This branch is sound by construction.
//   * A unit that would produce data-shaped frames (binary region,
//     base64 attachment, %u-encoded body) is rejected as
//     kDataNoCodeEvidence only after every code probe — sled run,
//     overflow-filler run, return-address region, GetPC idiom, template
//     literal — misses on both the raw bytes and the decoded bytes.
//     This branch is empirically alert-free; it is pinned by
//     tests/triage_differential_test.cpp, which requires triage-on and
//     triage-off reports to be byte-identical over every corpus.
//
// The filter is immutable after construction and safe to share across
// analysis workers (the automaton is built once; screen() is const and
// touches no mutable state).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "anomaly/payl.hpp"
#include "extract/extractor.hpp"
#include "semantic/template.hpp"
#include "sig/aho.hpp"
#include "util/bytes.hpp"

namespace senids::triage {

enum class TriageMode : std::uint8_t {
  kOff,            // every unit goes straight to stages (b)-(e)
  kOn,             // screen units; reject provably/empirically clean ones
  kForceEscalate,  // screen units but escalate all of them (testing)
};

/// Why a unit was escalated or rejected. Escalation reasons name the
/// first probe that fired; rejection reasons name the soundness argument
/// that justifies skipping stages (b)-(e).
enum class TriageReason : std::uint8_t {
  // Escalations.
  kForced,              // mode == kForceEscalate
  kExtractAll,          // extractor bypass mode frames every payload
  kRepetitionRun,       // overflow-filler run would form a frame
  kNopSled,             // NOP-like sled run would form a frame
  kReturnRegion,        // repeated return-address dwords present
  kGetPcCode,           // call/pop or fnstenv GetPC idiom present
  kLiteralMatch,        // a template's fixed byte literal occurs
  kDecodedCodeEvidence, // base64/%u decoded bytes held code evidence
  kSpectrumAnomaly,     // PAYL byte-spectrum model flagged the payload
  // Rejections.
  kEmptyUnit,           // empty payloads never form frames
  kNoFramesPossible,    // no extractor heuristic can fire: provably clean
  kDataNoCodeEvidence,  // data-shaped frames only, every code probe missed
};

[[nodiscard]] std::string_view triage_reason_name(TriageReason r) noexcept;

struct TriageDecision {
  bool escalate = true;
  TriageReason reason = TriageReason::kForced;
};

struct TriageOptions {
  TriageMode mode = TriageMode::kOff;
  /// Optional trained PAYL model (see src/anomaly): payloads the model
  /// flags as anomalous for their destination port are escalated. The
  /// model can only *add* escalations — rejection never consults it — so
  /// an untrained or absent model keeps the policy exactly as documented
  /// above. Shared const; the filter never mutates it.
  std::shared_ptr<const anomaly::PaylDetector> spectrum;
};

/// Fixed byte strings every template of `templates` needs verbatim in a
/// frame to match: little-endian immediates of kFixedConst patterns (an
/// x86 store/push of a fixed dword carries it as imm32), `int N` opcode
/// bytes of syscall statements, and ebx_points_to strings (carried as
/// raw data in the frame). Deduplicated. Exposed for tests.
[[nodiscard]] std::vector<util::Bytes> template_literals(
    const std::vector<semantic::Template>& templates);

/// True when `data` contains a GetPC idiom: a call (0xE8) whose 32-bit
/// displacement is small (|disp| <= 0x1000 — jmp/call/pop shellcode
/// calls backwards or just past itself, never megabytes away), or the
/// fnstenv [esp-12] encoding D9 74 24 F4. False-hit rate on random bytes
/// is ~1e-8 per position. Exposed for tests.
[[nodiscard]] bool has_getpc_code(util::ByteView data) noexcept;

namespace detail {

/// Raw figures from the fused stage-0 byte scan. Exposed only so tests
/// can prove the SIMD block path and the scalar path are equivalent;
/// screen() consumes these internally.
struct ScanProfile {
  std::size_t rep_len = 0;     // longest identical-byte run
  std::size_t rep_end = 0;     // offset one past that run
  std::size_t sled_len = 0;    // longest NOP-like run
  std::size_t b64_len = 0;     // longest base64-alphabet run
  std::size_t binary_len = 0;  // longest binary region (gaps <= 4)
  std::size_t percent = 0;     // '%' byte count
  std::size_t getpc_lead = 0;  // 0xE8/0xD9 byte count
};

/// Run the fused scan; `allow_simd == false` forces the scalar
/// fallback on every architecture. Both paths must agree bit for bit.
[[nodiscard]] ScanProfile scan_profile(util::ByteView payload, bool allow_simd);

}  // namespace detail

class TriageFilter {
 public:
  /// `extractor` must be the engine's extractor options: the screen
  /// mirrors its thresholds so "no frames possible" is decided against
  /// the extractor that actually runs on escalation.
  TriageFilter(TriageOptions options, extract::ExtractorOptions extractor,
               const std::vector<semantic::Template>& templates);

  /// Screen one analysis unit. `dst_port` selects the PAYL model cell
  /// when a spectrum model is configured (pass 0 when unknown).
  [[nodiscard]] TriageDecision screen(util::ByteView payload,
                                      std::uint16_t dst_port = 0) const;

  [[nodiscard]] const TriageOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t literal_count() const noexcept {
    return literals_.pattern_count();
  }

 private:
  /// The code probes over one byte view (raw payload or decoded region):
  /// filler run, sled run, return region, GetPC idiom, template literal.
  [[nodiscard]] bool code_evidence(util::ByteView data) const;

  TriageOptions options_;
  extract::ExtractorOptions extractor_;
  sig::AhoCorasick literals_;
};

}  // namespace senids::triage
