#include "verify/table_check.hpp"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "arch/arch.hpp"
#include "arch/reg.hpp"

namespace senids::verify {

namespace {

using arch::Instruction;
using arch::Mnemonic;
using arch::Operand;
using arch::OperandKind;
using arch::RegFamily;
using arch::RegSet;

const char* family_name(RegFamily f) noexcept {
  static constexpr const char* kNames[] = {"eax", "ecx", "edx", "ebx",
                                           "esp", "ebp", "esi", "edi",
                                           "r8",  "r9",  "r10", "r11",
                                           "r12", "r13", "r14", "r15"};
  const auto i = static_cast<unsigned>(f);
  return i < 16 ? kNames[i] : "?";
}

bool is_string_op(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kMovs:
    case Mnemonic::kCmps:
    case Mnemonic::kStos:
    case Mnemonic::kLods:
    case Mnemonic::kScas:
      return true;
    default:
      return false;
  }
}

/// Architecturally implicit register families of a mnemonic: families the
/// def/use summary may reference without a matching decoded operand.
RegSet implicit_families(const Instruction& insn) noexcept {
  RegSet s;
  switch (insn.mnemonic) {
    case Mnemonic::kPush:
    case Mnemonic::kPop:
    case Mnemonic::kPushf:
    case Mnemonic::kPopf:
    case Mnemonic::kCall:
    case Mnemonic::kRet:
    case Mnemonic::kRetf:
    case Mnemonic::kIret:
      s.add_family(RegFamily::kSp);
      break;
    case Mnemonic::kPusha:
    case Mnemonic::kPopa:
    case Mnemonic::kInt:
    case Mnemonic::kSyscall:  // reads the full convention, clobbers rcx/r11
      return RegSet::all();
    case Mnemonic::kEnter:
    case Mnemonic::kLeave:
      s.add_family(RegFamily::kSp);
      s.add_family(RegFamily::kBp);
      break;
    case Mnemonic::kMul:
    case Mnemonic::kImul:
    case Mnemonic::kDiv:
    case Mnemonic::kIdiv:
    case Mnemonic::kCwde:
    case Mnemonic::kCdq:
    case Mnemonic::kRdtsc:
      s.add_family(RegFamily::kAx);
      s.add_family(RegFamily::kDx);
      break;
    case Mnemonic::kMovs:
    case Mnemonic::kCmps:
      s.add_family(RegFamily::kSi);
      s.add_family(RegFamily::kDi);
      break;
    case Mnemonic::kStos:
    case Mnemonic::kScas:
      s.add_family(RegFamily::kAx);
      s.add_family(RegFamily::kDi);
      break;
    case Mnemonic::kLods:
      s.add_family(RegFamily::kAx);
      s.add_family(RegFamily::kSi);
      break;
    case Mnemonic::kXlat:
      s.add_family(RegFamily::kAx);
      s.add_family(RegFamily::kBx);
      break;
    case Mnemonic::kLoop:
    case Mnemonic::kLoope:
    case Mnemonic::kLoopne:
    case Mnemonic::kJecxz:
      s.add_family(RegFamily::kCx);
      break;
    case Mnemonic::kCpuid:
      s.add_family(RegFamily::kAx);
      s.add_family(RegFamily::kBx);
      s.add_family(RegFamily::kCx);
      s.add_family(RegFamily::kDx);
      break;
    case Mnemonic::kIn:
    case Mnemonic::kOut:
      s.add_family(RegFamily::kAx);
      s.add_family(RegFamily::kDx);
      break;
    case Mnemonic::kLahf:
    case Mnemonic::kSahf:
    case Mnemonic::kSalc:
    case Mnemonic::kAaa:
    case Mnemonic::kAas:
    case Mnemonic::kDaa:
    case Mnemonic::kDas:
      s.add_family(RegFamily::kAx);
      break;
    case Mnemonic::kCmpxchg:
      s.add_family(RegFamily::kAx);
      break;
    default:
      break;
  }
  // Repeated string instructions additionally count down ecx.
  if ((insn.prefixes.rep || insn.prefixes.repne) && is_string_op(insn.mnemonic)) {
    s.add_family(RegFamily::kCx);
  }
  return s;
}

/// Mnemonics whose operand bytes are hints only (multi-byte nop, x87
/// no-ops kept just for GetPC bookkeeping): exempt from the
/// operand-vs-summary cross-reference in both directions.
bool operands_are_hints(Mnemonic m) noexcept {
  return m == Mnemonic::kNop || m == Mnemonic::kFpuNop;
}

/// Mnemonics that read or write memory with no memory operand.
bool implicit_memory(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kPush:
    case Mnemonic::kPop:
    case Mnemonic::kPushf:
    case Mnemonic::kPopf:
    case Mnemonic::kPusha:
    case Mnemonic::kPopa:
    case Mnemonic::kCall:
    case Mnemonic::kRet:
    case Mnemonic::kRetf:
    case Mnemonic::kIret:
    case Mnemonic::kEnter:
    case Mnemonic::kLeave:
    case Mnemonic::kXlat:
      return true;
    default:
      return is_string_op(m);
  }
}

/// Pure data movement: architecturally leaves EFLAGS untouched. A
/// phantom flags_def here is unsound — the dead-code pass would treat it
/// as a kill and delete a live comparison above it.
bool never_defines_flags(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kMov:
    case Mnemonic::kMovzx:
    case Mnemonic::kMovsx:
    case Mnemonic::kLea:
    case Mnemonic::kXchg:
    case Mnemonic::kPush:
    case Mnemonic::kPop:
    case Mnemonic::kPusha:
    case Mnemonic::kPopa:
    case Mnemonic::kPushf:
    case Mnemonic::kLahf:
    case Mnemonic::kSalc:
    case Mnemonic::kSetcc:
    case Mnemonic::kCmov:
    case Mnemonic::kBswap:
    case Mnemonic::kXlat:
    case Mnemonic::kMovs:
    case Mnemonic::kStos:
    case Mnemonic::kLods:
    case Mnemonic::kNot:
    case Mnemonic::kNop:
    case Mnemonic::kCwde:
    case Mnemonic::kCdq:
    case Mnemonic::kCpuid:
    case Mnemonic::kRdtsc:
    case Mnemonic::kFpuNop:
    case Mnemonic::kFnstenv:
      return true;
    default:
      return false;
  }
}

/// Arithmetic/logic that architecturally writes EFLAGS: a missing
/// flags_def lets liveness flow through a clobber.
bool must_define_flags(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kAdd:
    case Mnemonic::kAdc:
    case Mnemonic::kSub:
    case Mnemonic::kSbb:
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
    case Mnemonic::kCmp:
    case Mnemonic::kTest:
    case Mnemonic::kInc:
    case Mnemonic::kDec:
    case Mnemonic::kNeg:
    case Mnemonic::kXadd:
    case Mnemonic::kCmpxchg:
    case Mnemonic::kMul:
    case Mnemonic::kImul:
    case Mnemonic::kBt:
    case Mnemonic::kBts:
    case Mnemonic::kBtr:
    case Mnemonic::kBtc:
    case Mnemonic::kBsf:
    case Mnemonic::kBsr:
    case Mnemonic::kShld:
    case Mnemonic::kShrd:
    case Mnemonic::kSahf:
    case Mnemonic::kPopf:
    case Mnemonic::kAaa:
    case Mnemonic::kAas:
    case Mnemonic::kDaa:
    case Mnemonic::kDas:
      return true;
    default:
      return false;
  }
}

/// Flag consumers: a missing flags_use makes the flag producer above
/// look dead.
bool must_use_flags(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kJcc:
    case Mnemonic::kSetcc:
    case Mnemonic::kCmov:
    case Mnemonic::kLoope:
    case Mnemonic::kLoopne:
    case Mnemonic::kAdc:
    case Mnemonic::kSbb:
    case Mnemonic::kRcl:
    case Mnemonic::kRcr:
    case Mnemonic::kPushf:
    case Mnemonic::kLahf:
    case Mnemonic::kSalc:
    case Mnemonic::kInto:
      return true;
    default:
      return false;
  }
}

/// Control transfers and I/O: never dead code.
bool must_side_effect(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::kJmp:
    case Mnemonic::kJcc:
    case Mnemonic::kCall:
    case Mnemonic::kRet:
    case Mnemonic::kRetf:
    case Mnemonic::kIret:
    case Mnemonic::kInt:
    case Mnemonic::kInt3:
    case Mnemonic::kInto:
    case Mnemonic::kSyscall:
    case Mnemonic::kHlt:
    case Mnemonic::kLoop:
    case Mnemonic::kLoope:
    case Mnemonic::kLoopne:
    case Mnemonic::kJecxz:
    case Mnemonic::kIn:
    case Mnemonic::kOut:
      return true;
    default:
      return false;
  }
}

void each_family(RegSet s, auto&& fn) {
  for (unsigned i = 0; i < 16; ++i) {
    const auto f = static_cast<RegFamily>(i);
    if (s.contains_family(f)) fn(f);
  }
}

}  // namespace

Report check_defuse(const Instruction& insn, const arch::DefUse& du) {
  Report out;
  const std::string where{arch::mnemonic_name(insn.mnemonic)};
  if (!insn.valid()) {
    out.error(where, "invalid instruction passed to the cross-check");
    return out;
  }
  if (insn.length == 0 || insn.length > 15) {
    out.error(where, "decoded length " + std::to_string(insn.length) +
                         " outside the architectural 1..15 range");
  }

  // Operand list must be dense: a hole means the decoder and the summary
  // disagree about which slots exist.
  for (std::size_t i = 1; i < insn.ops.size(); ++i) {
    if (insn.ops[i - 1].kind == OperandKind::kNone &&
        insn.ops[i].kind != OperandKind::kNone) {
      out.error(where, "operand #" + std::to_string(i) +
                           " present after an empty operand slot");
    }
  }

  const bool hints = operands_are_hints(insn.mnemonic);

  // Families the decoded operands justify.
  RegSet operand_regs;   // register operands
  RegSet address_regs;   // memory base/index registers
  bool has_mem = false;
  for (const Operand& op : insn.ops) {
    switch (op.kind) {
      case OperandKind::kReg:
        operand_regs.add(op.reg);
        break;
      case OperandKind::kMem:
        has_mem = true;
        if (op.mem.base) address_regs.add(*op.mem.base);
        if (op.mem.index) address_regs.add(*op.mem.index);
        break;
      default:
        break;
    }
  }

  // 1. Every def/use family must reference something the decoder
  //    produced (or an architectural implicit of the mnemonic).
  RegSet justified = operand_regs;
  justified |= address_regs;
  justified |= implicit_families(insn);
  RegSet referenced = du.defs;
  referenced |= du.uses;
  each_family(referenced, [&](RegFamily f) {
    if (!justified.contains_family(f)) {
      out.error(where, std::string("def/use entry references ") + family_name(f) +
                           ", which no decoded operand or implicit register of "
                           "this mnemonic produces");
    }
  });

  if (!hints) {
    // 2. Every decoded register operand / address register must be
    //    reflected in the summary.
    each_family(operand_regs, [&](RegFamily f) {
      if (!referenced.contains_family(f)) {
        out.error(where, std::string("register operand ") + family_name(f) +
                             " is not referenced by the def/use summary");
      }
    });
    each_family(address_regs, [&](RegFamily f) {
      if (!du.uses.contains_family(f)) {
        out.error(where, std::string("memory address register ") + family_name(f) +
                             " is not read by the def/use summary");
      }
    });

    // 3. Memory-touch consistency. lea computes an address only.
    const bool touches = du.mem_read || du.mem_write;
    if (insn.mnemonic == Mnemonic::kLea) {
      if (touches) out.error(where, "lea claims a memory access (address-only)");
    } else if (has_mem && !touches) {
      out.error(where, "memory operand decoded but the summary claims no memory "
                       "access");
    } else if (!has_mem && touches && !implicit_memory(insn.mnemonic)) {
      out.error(where, "summary claims a memory access but the decoder produces no "
                       "memory operand and the mnemonic has no implicit one");
    }
  }

  // 4./5. Flag definition discipline.
  if (never_defines_flags(insn.mnemonic) && du.flags_def) {
    out.error(where, "flags_def claimed for pure data movement (a phantom flag kill "
                     "lets dead-code delete a live comparison)");
  }
  if (must_define_flags(insn.mnemonic) && !du.flags_def) {
    out.error(where, "flags_def missing for a flag-writing instruction");
  }
  if (must_use_flags(insn.mnemonic) && !du.flags_use) {
    out.error(where, "flags_use missing for a flag-consuming instruction");
  }
  if (must_side_effect(insn.mnemonic) && !du.side_effect) {
    out.error(where, "side_effect missing for a control transfer / I-O instruction");
  }

  // 6. rep/repne string instructions count down ecx.
  if ((insn.prefixes.rep || insn.prefixes.repne) && is_string_op(insn.mnemonic)) {
    if (!du.uses.contains_family(RegFamily::kCx) ||
        !du.defs.contains_family(RegFamily::kCx)) {
      out.error(where, "rep-prefixed string instruction must read and write ecx "
                       "(the repeat counter), or its setup code looks dead");
    }
  }
  return out;
}

Report verify_decoder_tables() {
  Report out;
  std::set<std::string> seen;  // dedupe: many encodings share a mnemonic

  const arch::Arch* cur = nullptr;
  auto check_encoding = [&](const std::vector<std::uint8_t>& bytes) {
    const Instruction insn = cur->decode(bytes, 0);
    if (!insn.valid()) return;
    Report r = check_defuse(insn, cur->def_use(insn));
    for (Diagnostic& d : r.diags) {
      // Escape maps and prefixes keep two label bytes; plain opcodes one.
      char enc[48];
      if (bytes[0] == 0x0f || bytes[0] == 0xf3 || bytes[0] == 0xf2 ||
          (cur->mode() == arch::Mode::k64 && (bytes[0] & 0xf0) == 0x40)) {
        std::snprintf(enc, sizeof enc, "%s opcode %02x %02x", cur->name().data(),
                      bytes[0], bytes[1]);
      } else {
        std::snprintf(enc, sizeof enc, "%s opcode %02x", cur->name().data(), bytes[0]);
      }
      d.where = enc + (" (" + d.where + ")");
      if (seen.insert(d.where + "|" + d.message).second) {
        out.diags.push_back(std::move(d));
      }
    }
  };

  // ModRM bytes covering every reg field (group opcodes select their
  // mnemonic through it) in both a register form (mod=3) and a memory
  // form (mod=0, base=ebx). Trailing 0x01 padding feeds any immediate or
  // displacement the encoding wants.
  std::vector<std::uint8_t> modrms;
  for (unsigned reg = 0; reg < 8; ++reg) {
    modrms.push_back(static_cast<std::uint8_t>(0xC0 | (reg << 3) | 1));
    modrms.push_back(static_cast<std::uint8_t>((reg << 3) | 3));
  }

  for (const arch::Arch* a : arch::Arch::all()) {
    cur = a;
    for (unsigned op = 0; op < 256; ++op) {
      for (std::uint8_t modrm : modrms) {
        check_encoding({static_cast<std::uint8_t>(op), modrm, 1, 1, 1, 1, 1, 1, 1, 1});
        check_encoding(
            {0x0f, static_cast<std::uint8_t>(op), modrm, 1, 1, 1, 1, 1, 1, 1, 1});
        if (a->mode() == arch::Mode::k64) {
          // REX forms: W (64-bit operand), R+B (extended reg/rm fields),
          // and the kitchen sink — catches summaries that miss the
          // extended families or width-dependent implicit registers.
          for (std::uint8_t rex : {0x48, 0x45, 0x4f}) {
            check_encoding(
                {rex, static_cast<std::uint8_t>(op), modrm, 1, 1, 1, 1, 1, 1, 1, 1});
            check_encoding({rex, 0x0f, static_cast<std::uint8_t>(op), modrm, 1, 1, 1,
                            1, 1, 1, 1, 1});
          }
        }
      }
    }
    // Repeat-prefixed string forms (the ecx-counter rule).
    for (std::uint8_t op :
         {0xA4, 0xA5, 0xA6, 0xA7, 0xAA, 0xAB, 0xAC, 0xAD, 0xAE, 0xAF}) {
      check_encoding({0xF3, op, 1, 1, 1, 1});
      check_encoding({0xF2, op, 1, 1, 1, 1});
    }
  }
  return out;
}

}  // namespace senids::verify
