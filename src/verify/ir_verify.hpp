// Pass 1: IR well-formedness. Checks one lifted unit against the
// invariants the matcher silently assumes:
//
//  - operand arity/type consistency per Expr kind (kBin has two children,
//    kUn exactly one, kLoad an address and an 8/16/32-bit width, enum
//    fields in range, cached hashes consistent with the tree);
//  - def-before-use over memory versions: a load may only reference a
//    memory generation that existed when its event was emitted (the
//    symbolic analogue of def-before-use on virtual registers — register
//    reads always resolve to init values or earlier writes by
//    construction, memory generations are where ordering can break);
//  - no dangling event references: every event's insn_index/insn_offset
//    must point at the originating trace instruction, events must be
//    emitted in trace order, and per-kind payloads must be present
//    (non-null values, all eight syscall registers, backward branches
//    carrying a target at or before the branch);
//  - deadcode-pass idempotence: removing the instructions find_dead_code
//    marks dead and re-running it must find nothing new.
//
// Runs standalone (tests, tools) and as the debug-mode post-lift hook
// NidsEngine installs (see SemanticAnalyzer::Options::post_lift_hook).
#pragma once

#include <vector>

#include "ir/lifter.hpp"
#include "verify/verify.hpp"
#include "arch/insn.hpp"

namespace senids::verify {

/// Verify one lifted unit. `trace` must be the instruction trace `lifted`
/// was produced from.
Report verify_ir(const std::vector<arch::Instruction>& trace, const ir::LiftResult& lifted);

/// Expression-tree well-formedness only (exposed for targeted tests).
/// `where` labels diagnostics; shared subtrees are visited once.
void verify_expr(const ir::ExprPtr& e, const std::string& where, Report& out);

}  // namespace senids::verify
