#include "verify/verify.hpp"

#include <string_view>
#include <utility>

namespace senids::verify {

std::string Diagnostic::str() const {
  std::string out = severity == Severity::kError ? "error: " : "warning: ";
  out += where;
  out += ": ";
  out += message;
  return out;
}

void Report::add(Severity severity, std::string where, std::string message) {
  diags.push_back(Diagnostic{severity, std::move(where), std::move(message)});
}

void Report::merge(Report other) {
  diags.insert(diags.end(), std::make_move_iterator(other.diags.begin()),
               std::make_move_iterator(other.diags.end()));
}

std::size_t Report::errors() const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::size_t Report::warnings() const noexcept {
  return diags.size() - errors();
}

bool Report::mentions(std::string_view needle) const {
  for (const Diagnostic& d : diags) {
    if (d.message.find(needle) != std::string::npos ||
        d.where.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string Report::str() const {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.str();
    out += '\n';
  }
  return out;
}

}  // namespace senids::verify
