#include "verify/ir_verify.hpp"

#include <cstdio>
#include <unordered_set>

#include "ir/deadcode.hpp"
#include "ir/expr.hpp"

namespace senids::verify {

namespace {

using ir::Event;
using ir::EventKind;
using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;

bool valid_width(unsigned w) noexcept {
  return w == 8 || w == 16 || w == 32 || w == 64;
}

const char* event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kRegWrite: return "reg-write";
    case EventKind::kMemWrite: return "mem-write";
    case EventKind::kBranch: return "branch";
    case EventKind::kSyscall: return "syscall";
  }
  return "invalid";
}

std::string event_where(std::size_t i, EventKind k) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "event #%zu (%s)", i, event_kind_name(k));
  return buf;
}

/// Walks expression trees once each (they are heavily shared across
/// events) while carrying the memory generation the enclosing event was
/// emitted under, for the load def-before-use check.
struct ExprChecker {
  Report& out;
  std::unordered_set<const Expr*> seen;
  /// kMemWrite events emitted before the event under inspection. A load
  /// node first reached now was created no later than now, so its
  /// generation may not exceed this count.
  std::uint32_t mem_generation = 0;

  void check(const ExprPtr& e, const std::string& where) {
    if (!e) {
      out.error(where, "null expression");
      return;
    }
    if (!seen.insert(e.get()).second) return;
    const Expr& x = *e;
    if (x.value_bits > 32) {
      out.error(where, "value_bits " + std::to_string(x.value_bits) + " exceeds 32");
    }
    if (x.cached_hash != ir::recompute_hash(x)) {
      out.error(where, "cached hash is stale (node was not built by the mk_* factories)");
    }
    auto leaf = [&] {
      if (x.addr || x.lhs || x.rhs) out.error(where, "leaf expression carries children");
    };
    switch (x.kind) {
      case ExprKind::kConst:
        leaf();
        if (x.value_bits < 32 && (x.cval >> x.value_bits) != 0) {
          out.error(where, "constant 0x" + to_hex(x.cval) + " does not fit in value_bits " +
                               std::to_string(x.value_bits));
        }
        break;
      case ExprKind::kInitReg:
        leaf();
        if (static_cast<unsigned>(x.family) >= 16) {
          out.error(where, "init-reg family out of range");
        }
        break;
      case ExprKind::kUnknown:
        leaf();
        break;
      case ExprKind::kLoad:
        if (x.lhs || x.rhs) out.error(where, "load expression carries operator children");
        if (!valid_width(x.load_width)) {
          out.error(where, "load width " + std::to_string(x.load_width) +
                               " is not a decodable access width (8/16/32/64)");
        }
        if (x.generation > mem_generation) {
          out.error(where, "load references memory generation " +
                               std::to_string(x.generation) + " but only " +
                               std::to_string(mem_generation) +
                               " stores precede it (use before def)");
        }
        check(x.addr, where + ": load address");
        break;
      case ExprKind::kBin:
        if (x.addr) out.error(where, "binary expression carries a load address");
        if (static_cast<unsigned>(x.bop) > static_cast<unsigned>(ir::BinOp::kMul)) {
          out.error(where, "binary operator out of range");
        }
        if (!x.lhs || !x.rhs) {
          out.error(where, "binary expression missing an operand");
        }
        if (x.lhs) check(x.lhs, where + ": lhs");
        if (x.rhs) check(x.rhs, where + ": rhs");
        break;
      case ExprKind::kUn:
        if (x.addr) out.error(where, "unary expression carries a load address");
        if (x.rhs) out.error(where, "unary expression carries a second operand");
        if (static_cast<unsigned>(x.uop) > static_cast<unsigned>(ir::UnOp::kNeg)) {
          out.error(where, "unary operator out of range");
        }
        if (!x.lhs) {
          out.error(where, "unary expression missing its operand");
        } else {
          check(x.lhs, where + ": operand");
        }
        break;
      default:
        out.error(where, "invalid expression kind");
        break;
    }
  }

  static std::string to_hex(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%x", v);
    return buf;
  }
};

}  // namespace

void verify_expr(const ir::ExprPtr& e, const std::string& where, Report& out) {
  // Standalone entry point: no event context, so accept any generation.
  ExprChecker ck{out, {}, ~0u};
  ck.check(e, where);
}

Report verify_ir(const std::vector<arch::Instruction>& trace, const ir::LiftResult& lifted) {
  Report out;
  ExprChecker ck{out, {}, 0};

  std::size_t prev_index = 0;
  for (std::size_t i = 0; i < lifted.events.size(); ++i) {
    const Event& ev = lifted.events[i];
    const std::string where = event_where(i, ev.kind);

    // Dangling references: every event must point back into the trace it
    // was lifted from, at the instruction that really emitted it.
    if (ev.insn_index >= trace.size()) {
      out.error(where, "dangling insn_index " + std::to_string(ev.insn_index) +
                           " (trace has " + std::to_string(trace.size()) +
                           " instructions)");
      continue;
    }
    if (trace[ev.insn_index].offset != ev.insn_offset) {
      out.error(where, "insn_offset " + std::to_string(ev.insn_offset) +
                           " does not match trace instruction #" +
                           std::to_string(ev.insn_index) + " (offset " +
                           std::to_string(trace[ev.insn_index].offset) + ")");
    }
    if (ev.insn_index < prev_index) {
      out.error(where, "events regress in trace order (instruction #" +
                           std::to_string(ev.insn_index) + " after #" +
                           std::to_string(prev_index) + ")");
    }
    if (ev.insn_index > prev_index) prev_index = ev.insn_index;

    switch (ev.kind) {
      case EventKind::kRegWrite:
        if (static_cast<unsigned>(ev.reg) >= 16) {
          out.error(where, "register family out of range");
        }
        if (!ev.value) {
          out.error(where, "null written value");
        } else {
          ck.check(ev.value, where + ": value");
        }
        break;
      case EventKind::kMemWrite:
        if (!valid_width(ev.width)) {
          out.error(where, "store width " + std::to_string(ev.width) +
                               " is not a decodable access width (8/16/32/64)");
        }
        if (!ev.addr) {
          out.error(where, "null store address");
        } else {
          ck.check(ev.addr, where + ": address");
        }
        if (!ev.value) {
          out.error(where, "null stored value");
        } else {
          ck.check(ev.value, where + ": value");
        }
        // The store's own expressions were built before the store landed;
        // later events may reference the new generation.
        ++ck.mem_generation;
        break;
      case EventKind::kBranch: {
        const bool expect_backward = ev.target && *ev.target <= ev.insn_offset;
        if (ev.backward != expect_backward) {
          out.error(where, ev.backward
                               ? "backward flag set without a static target at or "
                                 "before the branch"
                               : "backward flag clear despite a static target at or "
                                 "before the branch");
        }
        if (ev.is_call && ev.conditional) {
          out.error(where, "conditional call event (no such instruction decodes)");
        }
        break;
      }
      case EventKind::kSyscall:
        for (std::size_t r = 0; r < ev.syscall_regs.size(); ++r) {
          if (!ev.syscall_regs[r]) {
            out.error(where, "null captured register #" + std::to_string(r));
          } else {
            ck.check(ev.syscall_regs[r], where + ": reg #" + std::to_string(r));
          }
        }
        break;
      default:
        out.error(where, "invalid event kind");
        break;
    }
  }

  // Deadcode idempotence: the pass must reach a fixed point in one
  // application — removing what it marks dead and re-running it may not
  // expose more. A violation means liveness leaked through a dead
  // instruction (exactly the bug class that unsoundly deletes live code).
  ir::DeadCodeResult first = ir::find_dead_code(trace);
  if (first.dead_count != 0) {
    std::vector<arch::Instruction> live;
    live.reserve(trace.size() - first.dead_count);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (!first.dead[i]) live.push_back(trace[i]);
    }
    ir::DeadCodeResult second = ir::find_dead_code(live);
    if (second.dead_count != 0) {
      out.error("deadcode", "pass is not idempotent: " +
                                std::to_string(second.dead_count) +
                                " instructions newly dead after removing the first " +
                                std::to_string(first.dead_count));
    }
  }
  return out;
}

}  // namespace senids::verify
