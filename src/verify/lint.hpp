// Pass 2: template/DSL linting. Statically checks a behavioral template
// set — whether parsed from templates/*.tmpl or built programmatically —
// for the defect classes that silently become false negatives:
//
//  - undefined variables: `advance X` where no earlier statement binds X
//    (the matcher would simply never satisfy the statement);
//  - unsatisfiable clauses: constraints no decodable instruction sequence
//    can meet — store widths the ISA cannot produce, fixed constants
//    wider than the store carrying them, and invertibility demanded of a
//    value that provably contains no load of the decoded byte (a
//    constant function is never a bijection on [0,255]);
//  - malformed patterns: missing children, transforms with an empty
//    operator alphabet;
//  - shadowed/duplicate templates: duplicate names, structurally
//    identical statement lists (alpha-renamed variables compare equal),
//    and templates whose statement list is a strict prefix of another's
//    (the general one fires whenever the specific one would);
//  - degenerate shapes worth a warning: a loop-back with no body
//    statements before it.
//
// Exposed as the senids_lint CLI and run over templates/ in CI.
#pragma once

#include <vector>

#include "semantic/template.hpp"
#include "verify/verify.hpp"

namespace senids::verify {

/// Lint one template set (intra-template checks plus cross-template
/// duplicate/shadow analysis).
Report lint_templates(const std::vector<semantic::Template>& templates);

/// Lint a single template (no cross-template checks).
Report lint_template(const semantic::Template& t);

}  // namespace senids::verify
