// Static-verification substrate shared by the three analysis passes
// (ir_verify, lint, table_check). A pass produces a Report — an ordered
// list of diagnostics — instead of asserting, so the same checks can run
// as a CLI (senids_lint), as a test oracle, and as a debug-mode engine
// hook that decides for itself how to react.
//
// Why this subsystem exists: the pipeline's value rests on the decode ->
// lift -> match chain being correct. A malformed IR node or an
// unsatisfiable template does not crash anything — it silently becomes a
// false negative, the precise failure mode network-level-emulation
// evasion exploits. These passes turn that class of bug into a loud
// lint-time or debug-time failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace senids::verify {

enum class Severity : std::uint8_t { kWarning, kError };

/// One finding. `where` locates it ("event #3", "template 'xor-loop'",
/// "opcode 0f c8"); `message` says what invariant broke.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string where;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Ordered findings of one pass (or several merged passes).
struct Report {
  std::vector<Diagnostic> diags;

  void add(Severity severity, std::string where, std::string message);
  void error(std::string where, std::string message) {
    add(Severity::kError, std::move(where), std::move(message));
  }
  void warn(std::string where, std::string message) {
    add(Severity::kWarning, std::move(where), std::move(message));
  }
  void merge(Report other);

  [[nodiscard]] std::size_t errors() const noexcept;
  [[nodiscard]] std::size_t warnings() const noexcept;
  /// Clean means no errors; warnings do not fail a verification run.
  [[nodiscard]] bool ok() const noexcept { return errors() == 0; }
  /// True when some diagnostic's message contains `needle` (test helper:
  /// negative fixtures assert on the specific diagnostic, not just !ok()).
  [[nodiscard]] bool mentions(std::string_view needle) const;

  /// One line per diagnostic: "error: <where>: <message>".
  [[nodiscard]] std::string str() const;
};

}  // namespace senids::verify
