#include "verify/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "arch/arch.hpp"
#include "semantic/pattern.hpp"

namespace senids::verify {

namespace {

using semantic::PatKind;
using semantic::PatPtr;
using semantic::Stmt;
using semantic::Template;

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

/// Variables a pattern binds, in match order (first use binds).
void collect_vars(const PatPtr& p, std::set<std::string>& out) {
  if (!p) return;
  if (!p->var.empty()) out.insert(p->var);
  collect_vars(p->a, out);
  collect_vars(p->b, out);
  collect_vars(p->base, out);
}

/// Structural sanity of a pattern tree (missing children, empty
/// transform alphabets).
void check_pattern(const PatPtr& p, const std::string& where, Report& out) {
  if (!p) {
    out.error(where, "null pattern");
    return;
  }
  switch (p->kind) {
    case PatKind::kAny:
    case PatKind::kConst:
    case PatKind::kFixedConst:
      break;
    case PatKind::kLoad:
      if (!p->a) {
        out.error(where, "load pattern missing its address sub-pattern");
      } else {
        check_pattern(p->a, where + ": load address", out);
      }
      break;
    case PatKind::kBin:
      if (!p->a || !p->b) {
        out.error(where, "binary pattern missing an operand sub-pattern");
      }
      if (p->a) check_pattern(p->a, where + ": lhs", out);
      if (p->b) check_pattern(p->b, where + ": rhs", out);
      break;
    case PatKind::kUn:
      if (!p->a) {
        out.error(where, "unary pattern missing its operand sub-pattern");
      } else {
        check_pattern(p->a, where + ": operand", out);
      }
      break;
    case PatKind::kTransform:
      if (!p->base) {
        out.error(where, "transform pattern missing its base sub-pattern");
      } else {
        check_pattern(p->base, where + ": base", out);
      }
      if (p->allowed.empty() && !p->allow_not) {
        out.error(where, "transform pattern with an empty operator alphabet matches "
                         "only the bare base");
      }
      break;
    default:
      out.error(where, "invalid pattern kind");
      break;
  }
}

/// Can some expression matched by `p` contain a load (of anything)?
/// kAny/kLoad can; constants cannot; operators can iff a child can. Used
/// to prove invertibility demands unsatisfiable: a stored value with no
/// load leaf is a constant function of the decoded byte, and a constant
/// function is never a bijection on [0,255].
bool can_contain_load(const PatPtr& p) {
  if (!p) return false;
  switch (p->kind) {
    case PatKind::kAny:
    case PatKind::kLoad:
      return true;
    case PatKind::kConst:
    case PatKind::kFixedConst:
      return false;
    case PatKind::kBin:
      return can_contain_load(p->a) || can_contain_load(p->b);
    case PatKind::kUn:
      return can_contain_load(p->a);
    case PatKind::kTransform:
      return can_contain_load(p->base);
  }
  return false;
}

// --------------------------------------------------------- fingerprints
//
// Canonical rendering with alpha-renamed variables: two templates whose
// statement lists differ only in variable names fingerprint identically,
// which is what the duplicate/shadow analysis compares.

struct VarCanon {
  std::map<std::string, int> ids;
  std::string canon(const std::string& var) {
    if (var.empty()) return "_";
    auto [it, fresh] = ids.try_emplace(var, static_cast<int>(ids.size()) + 1);
    (void)fresh;
    return "$" + std::to_string(it->second);
  }
};

std::string fp_pattern(const PatPtr& p, VarCanon& vars) {
  if (!p) return "null";
  switch (p->kind) {
    case PatKind::kAny:
      return "any(" + vars.canon(p->var) + ")";
    case PatKind::kConst:
      return std::string("const(") + vars.canon(p->var) +
             (p->require_nonzero ? ",nz)" : ")");
    case PatKind::kFixedConst:
      return "fix(" + hex(p->fixed) + ")";
    case PatKind::kLoad:
      return "load(" + fp_pattern(p->a, vars) + ")";
    case PatKind::kBin:
      return std::string("bin(") + ir::binop_name(p->bop) + "," +
             fp_pattern(p->a, vars) + "," + fp_pattern(p->b, vars) + ")";
    case PatKind::kUn:
      return std::string(p->uop == ir::UnOp::kNot ? "not(" : "neg(") +
             fp_pattern(p->a, vars) + ")";
    case PatKind::kTransform: {
      std::string out = "xf(" + fp_pattern(p->base, vars) + ";";
      for (ir::BinOp op : p->allowed) {
        out += ir::binop_name(op);
        out += ',';
      }
      if (p->allow_not) out += "not,";
      if (p->require_const_leaf) out += "cl";
      return out + ")";
    }
  }
  return "?";
}

std::string fp_stmt(const Stmt& s, VarCanon& vars) {
  switch (s.kind) {
    case Stmt::Kind::kMemWrite:
      return "mem(w=" + std::to_string(s.width) +
             (s.require_invertible ? ",inv," : ",") + fp_pattern(s.addr, vars) + "," +
             fp_pattern(s.value, vars) + ")";
    case Stmt::Kind::kRegWrite:
      return "reg(" + fp_pattern(s.value, vars) + ")";
    case Stmt::Kind::kAdvance:
      return "adv(" + vars.canon(s.ref_var) + ")";
    case Stmt::Kind::kBranchBack:
      return "loopback";
    case Stmt::Kind::kSyscall: {
      std::string out = "sys(v=" + std::to_string(s.vector);
      if (s.sysno) out += ",n=" + std::to_string(*s.sysno);
      if (s.ebx_low) out += ",bl=" + std::to_string(*s.ebx_low);
      if (!s.ebx_points_to.empty()) out += ",str=" + s.ebx_points_to;
      return out + ")";
    }
  }
  return "?";
}

std::vector<std::string> fingerprint(const Template& t) {
  VarCanon vars;
  std::vector<std::string> out;
  out.reserve(t.stmts.size());
  for (const Stmt& s : t.stmts) out.push_back(fp_stmt(s, vars));
  return out;
}

// ------------------------------------------------- arch-tag validation

/// Linux syscall numbers a shellcode template can plausibly demand, per
/// calling convention. Deliberately an allow-list: a template carrying
/// execve's x86-64 number (59) under an int-0x80 statement matches
/// nothing on a real system — that is 59/oldolduname on i386 — and the
/// whole point of the `arch:` tag is to catch that class of confusion.
bool syscall_number_known(std::uint16_t vector, std::uint8_t n) {
  if (vector == ir::kSyscallVector) {
    // x86-64: read write open close mmap mprotect dup dup2 socket connect
    // accept bind listen clone fork execve exit kill fcntl.
    static constexpr std::uint8_t kKnown[] = {0,  1,  2,  3,  9,  10, 32,
                                              33, 41, 42, 43, 49, 50, 56,
                                              57, 59, 60, 62, 72};
    for (std::uint8_t k : kKnown) {
      if (k == n) return true;
    }
    return false;
  }
  // i386 int 0x80: exit fork read write open close execve chmod lseek
  // getpid access kill dup pipe brk signal dup2 setreuid sigaction
  // mmap munmap socketcall sigreturn clone mprotect fcntl.
  static constexpr std::uint8_t kKnown[] = {1,  2,  3,  4,   5,   6,   11,
                                            15, 19, 20, 33,  37,  41,  42,
                                            45, 48, 63, 70,  90,  91,  102,
                                            119, 120, 125, 55};
  for (std::uint8_t k : kKnown) {
    if (k == n) return true;
  }
  return false;
}

std::string stmt_where(const Template& t, std::size_t i) {
  return "template '" + t.name + "' statement #" + std::to_string(i + 1);
}

}  // namespace

Report lint_template(const Template& t) {
  Report out;
  const std::string twhere = "template '" + t.name + "'";
  if (t.name.empty()) out.error("template", "empty template name");
  if (t.stmts.empty()) out.error(twhere, "template has no statements");

  const arch::Arch* tagged = arch::Arch::by_name(t.arch);
  if (tagged == nullptr) {
    out.error(twhere, "unknown architecture tag '" + t.arch + "'");
  }
  const bool is64 = tagged != nullptr && tagged->mode() == arch::Mode::k64;

  std::set<std::string> bound;        // variables bound by earlier statements
  bool body_before_loopback = false;  // any matchable statement seen yet
  for (std::size_t i = 0; i < t.stmts.size(); ++i) {
    const Stmt& s = t.stmts[i];
    const std::string where = stmt_where(t, i);
    switch (s.kind) {
      case Stmt::Kind::kMemWrite: {
        check_pattern(s.addr, where + ": address", out);
        check_pattern(s.value, where + ": value", out);
        if (s.width != 0 && s.width != 8 && s.width != 16 && s.width != 32 &&
            !(s.width == 64 && is64)) {
          out.error(where, "no decodable " + t.arch + " instruction produces a " +
                               std::to_string(s.width) + "-bit store");
        }
        if (s.require_invertible && !can_contain_load(s.value)) {
          out.error(where, "unsatisfiable clause: invertibility demanded of a value "
                           "that can never contain a load of the decoded byte (a "
                           "constant function is never invertible)");
        }
        if (s.value && s.value->kind == PatKind::kFixedConst && s.width != 0 &&
            s.width < 32 && (s.value->fixed >> s.width) != 0) {
          out.error(where, "unsatisfiable clause: fixed value " + hex(s.value->fixed) +
                               " cannot fit in a " + std::to_string(s.width) +
                               "-bit store");
        }
        collect_vars(s.addr, bound);
        collect_vars(s.value, bound);
        body_before_loopback = true;
        break;
      }
      case Stmt::Kind::kRegWrite:
        check_pattern(s.value, where + ": value", out);
        collect_vars(s.value, bound);
        body_before_loopback = true;
        break;
      case Stmt::Kind::kAdvance:
        if (s.ref_var.empty()) {
          out.error(where, "advance statement without a variable");
        } else if (!bound.contains(s.ref_var)) {
          out.error(where, "undefined variable '" + s.ref_var +
                               "': no earlier statement binds it, so the statement "
                               "can never match");
        }
        body_before_loopback = true;
        break;
      case Stmt::Kind::kBranchBack:
        if (!body_before_loopback) {
          out.warn(where, "loop-back with no body statements before it matches any "
                          "backward branch");
        }
        break;
      case Stmt::Kind::kSyscall: {
        if (tagged != nullptr) {
          bool vector_ok = false;
          for (const arch::SyscallConvention& conv : tagged->syscall_conventions()) {
            if (conv.vector == s.vector) vector_ok = true;
          }
          if (!vector_ok) {
            out.error(where, s.vector == ir::kSyscallVector
                                 ? "`syscall64` statement in a template tagged " +
                                       t.arch + " (no `syscall` instruction there)"
                                 : "int-vector syscall statement in a template "
                                   "tagged " + t.arch);
          } else if (s.sysno && !syscall_number_known(s.vector, *s.sysno)) {
            out.error(where, "syscall number " + std::to_string(*s.sysno) +
                                 " is not a known " + t.arch +
                                 " Linux syscall for this convention");
          }
        }
        body_before_loopback = true;
        break;
      }
      default:
        out.error(where, "invalid statement kind");
        break;
    }
  }
  return out;
}

Report lint_templates(const std::vector<Template>& templates) {
  Report out;
  for (const Template& t : templates) out.merge(lint_template(t));

  // Cross-template analysis: duplicate names, alpha-equivalent statement
  // lists, and strict-prefix shadowing (the prefix template fires on
  // every trace the longer one matches — subsequence matching reuses the
  // same witnesses).
  std::set<std::string> names;
  std::vector<std::vector<std::string>> fps;
  fps.reserve(templates.size());
  for (const Template& t : templates) {
    if (!t.name.empty() && !names.insert(t.name).second) {
      out.error("template '" + t.name + "'", "duplicate template name");
    }
    fps.push_back(fingerprint(t));
  }
  for (std::size_t i = 0; i < templates.size(); ++i) {
    for (std::size_t j = i + 1; j < templates.size(); ++j) {
      const auto& a = fps[i];
      const auto& b = fps[j];
      if (a.empty() || b.empty()) continue;
      if (a == b) {
        out.error("template '" + templates[j].name + "'",
                  "structurally identical to template '" + templates[i].name +
                      "' (duplicate pattern; both fire on the same traces)");
        continue;
      }
      const auto& shorter = a.size() < b.size() ? a : b;
      const auto& longer = a.size() < b.size() ? b : a;
      const Template& tshort = a.size() < b.size() ? templates[i] : templates[j];
      const Template& tlong = a.size() < b.size() ? templates[j] : templates[i];
      if (std::equal(shorter.begin(), shorter.end(), longer.begin())) {
        out.warn("template '" + tshort.name + "'",
                 "shadows template '" + tlong.name +
                     "': its statement list is a strict prefix, so it fires on "
                     "every trace the longer template matches");
      }
    }
  }
  return out;
}

}  // namespace senids::verify
