// Pass 3: decoder-table cross-check. The decoder (arch/decoder.cpp) and
// the def/use analysis (arch/defuse.cpp) are two hand-maintained views of
// the same opcode maps; a disagreement between them is an unsound
// liveness fact, which the dead-code pass then turns into a deleted live
// instruction — a silent missed detection. This pass decodes
// representative encodings of the full one-byte map and the implemented
// two-byte (0F) map, covering every ModRM reg field (group opcodes
// select mnemonics through it) in both register and memory forms, and
// validates each decoded instruction against its def/use summary:
//
//  - every def/use register family must be justified by an operand the
//    decoder actually produced (register operand, memory base/index) or
//    by the mnemonic's architectural implicit registers (esp for stack
//    ops, eax/edx for mul/div, esi/edi/ecx for string ops, ...);
//  - every register operand and memory base/index must appear in the
//    summary (reads or writes something the decoder says is there);
//  - memory-touching summaries need a memory operand or an implicitly
//    memory-touching mnemonic, and vice versa (lea stays address-only);
//  - pure data movement must not claim flag definitions (a phantom
//    flags_def lets the dead-code pass kill a live comparison);
//  - rep/repne-prefixed string instructions must count ecx as both read
//    and written (or the counter setup before them is "dead").
//
// Runs at engine startup in debug builds and as a tier-1 test.
#pragma once

#include "verify/verify.hpp"
#include "arch/defuse.hpp"
#include "arch/insn.hpp"

namespace senids::verify {

/// Validate one decoded instruction against one def/use summary.
/// Exposed separately so tests can feed deliberately inconsistent pairs.
Report check_defuse(const arch::Instruction& insn, const arch::DefUse& du);

/// Sweep the one-byte and implemented two-byte opcode maps, decoding
/// representative encodings and cross-checking each against def_use().
Report verify_decoder_tables();

}  // namespace senids::verify
