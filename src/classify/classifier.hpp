// Traffic classification (Section 4.1): decide which packets are
// "interesting" before the expensive stages run. Two schemes, exactly as
// in the paper:
//   1. Honeypot: traffic to registered decoy addresses taints the sender.
//   2. Dark space: a source that keeps probing unused addresses is
//      counted (n) and becomes suspicious at a threshold (t).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"

namespace senids::classify {

/// CIDR prefix of unused address space.
struct Prefix {
  net::Ipv4Addr base;
  std::uint8_t bits = 32;

  [[nodiscard]] bool contains(net::Ipv4Addr addr) const noexcept {
    if (bits == 0) return true;
    const std::uint32_t mask = bits >= 32 ? 0xffffffffu : ~((1u << (32 - bits)) - 1);
    return (addr.value & mask) == (base.value & mask);
  }
};

class HoneypotRegistry {
 public:
  void add_decoy(net::Ipv4Addr addr) { decoys_.insert(addr.value); }
  [[nodiscard]] bool is_decoy(net::Ipv4Addr addr) const {
    return decoys_.contains(addr.value);
  }
  [[nodiscard]] std::size_t size() const noexcept { return decoys_.size(); }

 private:
  std::unordered_set<std::uint32_t> decoys_;
};

class DarkSpaceDetector {
 public:
  explicit DarkSpaceDetector(std::size_t threshold = 5) : threshold_(threshold) {}

  void add_unused_prefix(Prefix p) { prefixes_.push_back(p); }
  [[nodiscard]] bool is_unused(net::Ipv4Addr addr) const {
    for (const Prefix& p : prefixes_) {
      if (p.contains(addr)) return true;
    }
    return false;
  }

  /// Record one probe to an unused address; returns the source's count n.
  std::size_t record_probe(net::Ipv4Addr src) { return ++counts_[src.value]; }

  [[nodiscard]] std::size_t count(net::Ipv4Addr src) const {
    auto it = counts_.find(src.value);
    return it == counts_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

 private:
  std::size_t threshold_;
  std::vector<Prefix> prefixes_;
  std::unordered_map<std::uint32_t, std::size_t> counts_;
};

enum class Verdict : std::uint8_t { kIgnore, kAnalyze };

struct ClassifierOptions {
  bool use_honeypot = true;
  bool use_dark_space = true;
  std::size_t dark_space_threshold = 5;
  /// Disable classification entirely — every packet is analyzed (the
  /// Section 5.4 false-positive configuration).
  bool analyze_everything = false;
};

/// Stateful classifier. observe() must see every packet in order; it
/// returns the verdict for that packet. Sources stay tainted for the
/// remainder of the run (the paper takes "further action ... against the
/// offending IP address").
class TrafficClassifier {
 public:
  explicit TrafficClassifier(ClassifierOptions options = ClassifierOptions{});

  HoneypotRegistry& honeypots() noexcept { return honeypots_; }
  DarkSpaceDetector& dark_space() noexcept { return dark_space_; }

  Verdict observe(const net::ParsedPacket& pkt);

  /// Verdict without state update (used for reassembled datagrams, whose
  /// fragments were already observed individually).
  [[nodiscard]] Verdict check(const net::ParsedPacket& pkt) const {
    if (options_.analyze_everything) return Verdict::kAnalyze;
    return tainted_.contains(pkt.ip.src.value) ? Verdict::kAnalyze : Verdict::kIgnore;
  }

  [[nodiscard]] bool is_tainted(net::Ipv4Addr src) const {
    return tainted_.contains(src.value);
  }
  [[nodiscard]] std::size_t tainted_count() const noexcept { return tainted_.size(); }

 private:
  ClassifierOptions options_;
  HoneypotRegistry honeypots_;
  DarkSpaceDetector dark_space_;
  std::unordered_set<std::uint32_t> tainted_;
};

}  // namespace senids::classify
