// Traffic classification (Section 4.1): decide which packets are
// "interesting" before the expensive stages run. Two schemes, exactly as
// in the paper:
//   1. Honeypot: traffic to registered decoy addresses taints the sender.
//   2. Dark space: a source that keeps probing unused addresses is
//      counted (n) and becomes suspicious at a threshold (t).
//
// Configuration vs. state: the honeypot registry, dark prefixes, and
// options are *configuration* — registered before traffic flows and
// read-only after. The taint set and the per-source probe counters are
// *state* — mutated per packet. The sharded engine exploits the split:
// every shard reads the one shared configuration but owns a private
// ClassifierState for the sources routed to it, so the packet hot path
// needs no cross-shard synchronization.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"

namespace senids::classify {

/// CIDR prefix of unused address space.
struct Prefix {
  net::Ipv4Addr base;
  std::uint8_t bits = 32;

  [[nodiscard]] bool contains(net::Ipv4Addr addr) const noexcept {
    if (bits == 0) return true;
    const std::uint32_t mask = bits >= 32 ? 0xffffffffu : ~((1u << (32 - bits)) - 1);
    return (addr.value & mask) == (base.value & mask);
  }
};

class HoneypotRegistry {
 public:
  void add_decoy(net::Ipv4Addr addr) { decoys_.insert(addr.value); }
  [[nodiscard]] bool is_decoy(net::Ipv4Addr addr) const {
    return decoys_.contains(addr.value);
  }
  [[nodiscard]] std::size_t size() const noexcept { return decoys_.size(); }

 private:
  std::unordered_set<std::uint32_t> decoys_;
};

/// Bounded per-source dark-space probe counters. A spoofed-source flood
/// would otherwise grow the table one entry per forged address, so past
/// `max_sources` live entries the least-recently-probed source is
/// evicted (its count resets if it probes again — an attacker cycling
/// more addresses than the cap trades taint progress for table space).
/// 0 = unbounded.
class DarkSpaceCounters {
 public:
  explicit DarkSpaceCounters(std::size_t max_sources = 0) : max_sources_(max_sources) {}

  /// Bump (and LRU-refresh) the probe count for `src`; returns the new
  /// count. Evicts the coldest source first when the cap is exceeded.
  std::size_t increment(std::uint32_t src);

  [[nodiscard]] std::size_t count(std::uint32_t src) const {
    auto it = counts_.find(src);
    return it == counts_.end() ? 0 : it->second.count;
  }
  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  /// Sources evicted to enforce the cap since construction.
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    std::size_t count = 0;
    std::list<std::uint32_t>::iterator lru_pos;
  };
  std::size_t max_sources_;
  std::size_t evictions_ = 0;
  std::list<std::uint32_t> lru_;  // front = least recently probed
  std::unordered_map<std::uint32_t, Entry> counts_;
};

/// Dark-space scheme: the prefix list and threshold are configuration;
/// the probe counters are state. The embedded counter table serves the
/// classic single-state API (record_probe/count); shards hold their own
/// DarkSpaceCounters and record through record_probe_in.
class DarkSpaceDetector {
 public:
  explicit DarkSpaceDetector(std::size_t threshold = 5, std::size_t max_sources = 0)
      : threshold_(threshold), max_sources_(max_sources), counters_(max_sources) {}

  void add_unused_prefix(Prefix p) { prefixes_.push_back(p); }
  [[nodiscard]] bool is_unused(net::Ipv4Addr addr) const {
    for (const Prefix& p : prefixes_) {
      if (p.contains(addr)) return true;
    }
    return false;
  }

  /// Record one probe to an unused address; returns the source's count n.
  std::size_t record_probe(net::Ipv4Addr src) { return counters_.increment(src.value); }
  /// Record into external (shard-owned) counters; configuration is only
  /// read, so concurrent shards may call this with disjoint `counters`.
  std::size_t record_probe_in(DarkSpaceCounters& counters, net::Ipv4Addr src) const {
    return counters.increment(src.value);
  }

  [[nodiscard]] std::size_t count(net::Ipv4Addr src) const {
    return counters_.count(src.value);
  }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }
  /// Evictions from the embedded counter table (single-state API).
  [[nodiscard]] std::size_t evictions() const noexcept { return counters_.evictions(); }
  /// A fresh counter table sized by this detector's cap (shard setup).
  [[nodiscard]] DarkSpaceCounters make_counters() const {
    return DarkSpaceCounters(max_sources_);
  }
  /// The embedded counter table itself (the single-state engine path
  /// records into it and reads its eviction count per capture).
  [[nodiscard]] DarkSpaceCounters& counters() noexcept { return counters_; }

 private:
  std::size_t threshold_;
  std::size_t max_sources_;
  std::vector<Prefix> prefixes_;
  DarkSpaceCounters counters_;  // embedded default state
};

enum class Verdict : std::uint8_t { kIgnore, kAnalyze };

struct ClassifierOptions {
  bool use_honeypot = true;
  bool use_dark_space = true;
  std::size_t dark_space_threshold = 5;
  /// Cap on live per-source dark-space counters (LRU eviction past it;
  /// see DarkSpaceCounters). 0 = unbounded. The default bounds the table
  /// at ~16 MB under a spoofed-source flood while being far above any
  /// honest source population.
  std::size_t dark_space_max_sources = 1u << 20;
  /// Disable classification entirely — every packet is analyzed (the
  /// Section 5.4 false-positive configuration).
  bool analyze_everything = false;
};

/// Per-shard mutable classification state: the taint set plus dark-space
/// probe counters for the sources one shard owns. Obtain via
/// TrafficClassifier::make_state() so the counter cap matches the
/// configured option.
struct ClassifierState {
  std::unordered_set<std::uint32_t> tainted;
  DarkSpaceCounters dark_counts;
};

/// Stateful classifier. observe() must see every packet in order; it
/// returns the verdict for that packet. Sources stay tainted for the
/// remainder of the run (the paper takes "further action ... against the
/// offending IP address").
///
/// Two usage shapes:
///  - Single-state (observe/check/is_tainted): state lives inside the
///    classifier — the 1-shard engine and LiveSession path.
///  - Shard-external (make_state + observe_in/check_in, all const on the
///    classifier): configuration is shared read-only across shards, each
///    of which mutates only its own ClassifierState. Safe concurrently
///    as long as no configuration mutator runs while traffic flows.
class TrafficClassifier {
 public:
  explicit TrafficClassifier(ClassifierOptions options = ClassifierOptions{});

  HoneypotRegistry& honeypots() noexcept { return honeypots_; }
  DarkSpaceDetector& dark_space() noexcept { return dark_space_; }

  Verdict observe(const net::ParsedPacket& pkt) {
    return observe_into(tainted_, dark_counts(), pkt);
  }

  /// Verdict without state update (used for reassembled datagrams, whose
  /// fragments were already observed individually).
  [[nodiscard]] Verdict check(const net::ParsedPacket& pkt) const {
    if (options_.analyze_everything) return Verdict::kAnalyze;
    return tainted_.contains(pkt.ip.src.value) ? Verdict::kAnalyze : Verdict::kIgnore;
  }

  /// Fresh shard-local state with the configured dark-counter cap.
  [[nodiscard]] ClassifierState make_state() const {
    return ClassifierState{{}, dark_space_.make_counters()};
  }
  /// observe() against external state; const because only `state` and the
  /// process-wide metric counters are mutated.
  Verdict observe_in(ClassifierState& state, const net::ParsedPacket& pkt) const {
    return observe_into(state.tainted, state.dark_counts, pkt);
  }
  /// check() against external state.
  [[nodiscard]] Verdict check_in(const ClassifierState& state,
                                 const net::ParsedPacket& pkt) const {
    if (options_.analyze_everything) return Verdict::kAnalyze;
    return state.tainted.contains(pkt.ip.src.value) ? Verdict::kAnalyze
                                                    : Verdict::kIgnore;
  }

  [[nodiscard]] bool is_tainted(net::Ipv4Addr src) const {
    return tainted_.contains(src.value);
  }
  [[nodiscard]] std::size_t tainted_count() const noexcept { return tainted_.size(); }
  [[nodiscard]] const ClassifierOptions& options() const noexcept { return options_; }

 private:
  Verdict observe_into(std::unordered_set<std::uint32_t>& tainted,
                       DarkSpaceCounters& counts, const net::ParsedPacket& pkt) const;
  DarkSpaceCounters& dark_counts() noexcept;

  ClassifierOptions options_;
  HoneypotRegistry honeypots_;
  DarkSpaceDetector dark_space_;
  std::unordered_set<std::uint32_t> tainted_;  // embedded default state
};

}  // namespace senids::classify
