#include "classify/classifier.hpp"

namespace senids::classify {

TrafficClassifier::TrafficClassifier(ClassifierOptions options)
    : options_(options), dark_space_(options.dark_space_threshold) {}

Verdict TrafficClassifier::observe(const net::ParsedPacket& pkt) {
  if (options_.analyze_everything) return Verdict::kAnalyze;

  const net::Ipv4Addr src = pkt.ip.src;

  if (options_.use_honeypot && honeypots_.is_decoy(pkt.ip.dst)) {
    // "Any sending host emitting traffic destined for a honeypot address
    // is considered suspicious; and any packets sent by such a host will
    // be analyzed."
    tainted_.insert(src.value);
  }

  if (options_.use_dark_space && dark_space_.is_unused(pkt.ip.dst)) {
    if (dark_space_.record_probe(src) >= dark_space_.threshold()) {
      tainted_.insert(src.value);
    }
  }

  return tainted_.contains(src.value) ? Verdict::kAnalyze : Verdict::kIgnore;
}

}  // namespace senids::classify
