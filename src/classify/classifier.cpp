#include "classify/classifier.hpp"

#include "obs/metrics.hpp"

namespace senids::classify {

namespace {

/// Process-wide classifier counters: how traffic gets routed into (or
/// pruned from) the expensive pipeline stages, and why sources became
/// tainted.
struct ClassifierMetrics {
  obs::Counter& ignored;
  obs::Counter& analyzed;
  obs::Counter& honeypot_taints;
  obs::Counter& dark_space_taints;
};

ClassifierMetrics& classifier_metrics() {
  auto& r = obs::Registry::instance();
  static ClassifierMetrics m{
      r.counter("senids_classify_verdicts_total", "Classifier verdicts by outcome",
                "verdict", "ignore"),
      r.counter("senids_classify_verdicts_total", "Classifier verdicts by outcome",
                "verdict", "analyze"),
      r.counter("senids_classify_taints_total", "Sources tainted, by scheme", "scheme",
                "honeypot"),
      r.counter("senids_classify_taints_total", "Sources tainted, by scheme", "scheme",
                "dark_space"),
  };
  return m;
}

}  // namespace

TrafficClassifier::TrafficClassifier(ClassifierOptions options)
    : options_(options), dark_space_(options.dark_space_threshold) {}

Verdict TrafficClassifier::observe(const net::ParsedPacket& pkt) {
  ClassifierMetrics& metrics = classifier_metrics();
  if (options_.analyze_everything) {
    metrics.analyzed.add();
    return Verdict::kAnalyze;
  }

  const net::Ipv4Addr src = pkt.ip.src;

  if (options_.use_honeypot && honeypots_.is_decoy(pkt.ip.dst)) {
    // "Any sending host emitting traffic destined for a honeypot address
    // is considered suspicious; and any packets sent by such a host will
    // be analyzed."
    if (tainted_.insert(src.value).second) metrics.honeypot_taints.add();
  }

  if (options_.use_dark_space && dark_space_.is_unused(pkt.ip.dst)) {
    if (dark_space_.record_probe(src) >= dark_space_.threshold()) {
      if (tainted_.insert(src.value).second) metrics.dark_space_taints.add();
    }
  }

  const bool analyze = tainted_.contains(src.value);
  (analyze ? metrics.analyzed : metrics.ignored).add();
  return analyze ? Verdict::kAnalyze : Verdict::kIgnore;
}

}  // namespace senids::classify
