#include "classify/classifier.hpp"

#include "obs/metrics.hpp"

namespace senids::classify {

namespace {

/// Process-wide classifier counters: how traffic gets routed into (or
/// pruned from) the expensive pipeline stages, why sources became
/// tainted, and pressure on the bounded dark-space counter table.
struct ClassifierMetrics {
  obs::Counter& ignored;
  obs::Counter& analyzed;
  obs::Counter& honeypot_taints;
  obs::Counter& dark_space_taints;
  obs::Counter& dark_sources_evicted;
};

ClassifierMetrics& classifier_metrics() {
  auto& r = obs::Registry::instance();
  static ClassifierMetrics m{
      r.counter("senids_classify_verdicts_total", "Classifier verdicts by outcome",
                "verdict", "ignore"),
      r.counter("senids_classify_verdicts_total", "Classifier verdicts by outcome",
                "verdict", "analyze"),
      r.counter("senids_classify_taints_total", "Sources tainted, by scheme", "scheme",
                "honeypot"),
      r.counter("senids_classify_taints_total", "Sources tainted, by scheme", "scheme",
                "dark_space"),
      r.counter("senids_dark_sources_evicted_total",
                "Dark-space probe counters LRU-evicted at the per-source cap"),
  };
  return m;
}

}  // namespace

std::size_t DarkSpaceCounters::increment(std::uint32_t src) {
  auto it = counts_.find(src);
  if (it != counts_.end()) {
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
    return ++it->second.count;
  }
  if (max_sources_ && counts_.size() >= max_sources_ && !lru_.empty()) {
    // Table full: forget the least-recently-probed source to admit this
    // one. Its count restarts from zero if it ever probes again.
    counts_.erase(lru_.front());
    lru_.pop_front();
    ++evictions_;
    classifier_metrics().dark_sources_evicted.add();
  }
  auto pos = lru_.insert(lru_.end(), src);
  counts_.emplace(src, Entry{1, pos});
  return 1;
}

TrafficClassifier::TrafficClassifier(ClassifierOptions options)
    : options_(options),
      dark_space_(options.dark_space_threshold, options.dark_space_max_sources) {}

DarkSpaceCounters& TrafficClassifier::dark_counts() noexcept {
  return dark_space_.counters();
}

Verdict TrafficClassifier::observe_into(std::unordered_set<std::uint32_t>& tainted,
                                        DarkSpaceCounters& counts,
                                        const net::ParsedPacket& pkt) const {
  ClassifierMetrics& metrics = classifier_metrics();
  if (options_.analyze_everything) {
    metrics.analyzed.add();
    return Verdict::kAnalyze;
  }

  const net::Ipv4Addr src = pkt.ip.src;

  if (options_.use_honeypot && honeypots_.is_decoy(pkt.ip.dst)) {
    // "Any sending host emitting traffic destined for a honeypot address
    // is considered suspicious; and any packets sent by such a host will
    // be analyzed."
    if (tainted.insert(src.value).second) metrics.honeypot_taints.add();
  }

  if (options_.use_dark_space && dark_space_.is_unused(pkt.ip.dst)) {
    if (dark_space_.record_probe_in(counts, src) >= dark_space_.threshold()) {
      if (tainted.insert(src.value).second) metrics.dark_space_taints.add();
    }
  }

  const bool analyze = tainted.contains(src.value);
  (analyze ? metrics.analyzed : metrics.ignored).add();
  return analyze ? Verdict::kAnalyze : Verdict::kIgnore;
}

}  // namespace senids::classify
