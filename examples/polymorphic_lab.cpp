// Polymorphic lab: generate ADMmutate/Clet instances, show what the
// obfuscation does to the bytes, and trace one instance through the
// pipeline — disassembly, execution-order linearization, lifted events,
// and the template match with its recovered key.
//
//   $ ./polymorphic_lab [seed]
#include <cstdio>
#include <cstdlib>

#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "ir/deadcode.hpp"
#include "ir/lifter.hpp"
#include "semantic/library.hpp"
#include "util/hexdump.hpp"
#include "arch/format.hpp"
#include "arch/scan.hpp"

using namespace senids;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2006;
  util::Prng prng(seed);

  const auto payload = gen::make_shell_spawn_corpus()[1].code;
  std::printf("== plain payload (%zu bytes): push-builder execve shellcode ==\n",
              payload.size());
  std::printf("%s\n", util::hexdump(payload).c_str());

  gen::PolyResult poly = gen::admmutate_encode(payload, prng);
  std::printf("== ADMmutate instance (seed %llu) ==\n",
              static_cast<unsigned long long>(seed));
  std::printf("scheme: %s   key: 0x%02x   sled: %zu bytes   total: %zu bytes\n\n",
              poly.scheme == gen::DecoderScheme::kXor ? "xor" : "mov/or/and/not",
              poly.key, poly.sled_len, poly.bytes.size());
  std::printf("%s\n", util::hexdump(poly.bytes).c_str());

  // Execution-order disassembly from the sled entry, with the junk the
  // engine injected flagged by the dead-code analysis.
  std::printf("== execution-order trace (out-of-order linearized; junk marked) ==\n");
  auto trace = arch::execution_trace(poly.bytes, 0);
  auto junk_marks = ir::find_dead_code(trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::printf("%08zx:  %-36s%s\n", trace[i].offset,
                arch::format(trace[i]).c_str(), junk_marks.dead[i] ? " ; junk" : "");
  }
  std::printf("(%zu of %zu instructions are junk)\n\n", junk_marks.dead_count,
              trace.size());

  // Lift and show the semantically relevant events.
  auto lifted = ir::lift(trace);
  std::printf("== lifted memory-write events ==\n");
  for (const auto& ev : lifted.events) {
    if (ev.kind != ir::EventKind::kMemWrite) continue;
    std::printf("  @%04zx  mem%u[%s] := %s\n", ev.insn_offset, ev.width,
                ir::to_string(ev.addr).c_str(), ir::to_string(ev.value).c_str());
  }

  // Template matching.
  std::printf("\n== template matching ==\n");
  semantic::LiftedCode lc{&trace, &lifted.events, poly.bytes};
  for (const auto& t : semantic::make_decoder_library()) {
    auto m = semantic::match_template(t, lc);
    if (!m) {
      std::printf("  %-28s no match\n", t.name.c_str());
      continue;
    }
    std::uint32_t key = 0;
    bool have_key = false;
    if (auto it = m->bindings.find("K"); it != m->bindings.end()) {
      have_key = ir::is_const(it->second, &key);
    }
    if (have_key) {
      std::printf("  %-28s MATCH, recovered key 0x%02x (engine used 0x%02x)\n",
                  t.name.c_str(), key, poly.key);
    } else {
      std::printf("  %-28s MATCH\n", t.name.c_str());
    }
  }

  // A Clet instance for contrast.
  std::printf("\n== Clet instance (same payload) ==\n");
  gen::PolyResult clet = gen::clet_encode(payload, prng);
  auto clet_trace = arch::execution_trace(clet.bytes, 0);
  auto clet_lifted = ir::lift(clet_trace);
  semantic::LiftedCode clet_lc{&clet_trace, &clet_lifted.events, clet.bytes};
  auto m = semantic::match_template(semantic::tmpl_xor_decrypt_loop(), clet_lc);
  std::printf("xor template on Clet instance: %s\n", m ? "MATCH" : "no match");
  return 0;
}
