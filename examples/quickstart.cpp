// Quickstart: build a tiny capture containing one exploit sent to a
// honeypot plus some benign web traffic, run the NIDS, print the alerts.
//
//   $ ./quickstart
#include <cstdio>

#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

int main() {
  using namespace senids;

  // --- assemble a workload: benign flows + one polymorphic exploit ------
  gen::TraceBuilder trace(/*seed=*/42);

  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);
  const net::Ipv4Addr web_server = net::Ipv4Addr::from_octets(10, 0, 0, 20);
  const net::Endpoint attacker{net::Ipv4Addr::from_octets(192, 0, 2, 66), 31337};
  const net::Endpoint client{net::Ipv4Addr::from_octets(198, 51, 100, 10), 45000};

  for (int i = 0; i < 20; ++i) {
    trace.add_benign(client, web_server, gen::make_benign_payload(trace.prng()));
  }

  // The attacker wraps a shell-spawning payload with an ADMmutate-style
  // polymorphic encoder and fires it at the honeypot.
  auto corpus = gen::make_shell_spawn_corpus();
  gen::PolyResult poly = gen::admmutate_encode(corpus[1].code, trace.prng());
  trace.add_tcp_flow(attacker, net::Endpoint{honeypot, 80}, poly.bytes);

  // --- configure and run the NIDS ---------------------------------------
  core::NidsOptions options;
  core::NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(honeypot);

  core::Report report = nids.process_capture(trace.capture());

  std::printf("packets: %zu  suspicious: %zu  units analyzed: %zu  frames: %zu\n",
              report.stats.packets, report.stats.suspicious_packets,
              report.stats.units_analyzed, report.stats.frames_extracted);
  std::printf("alerts: %zu\n", report.alerts.size());
  for (const core::Alert& a : report.alerts) {
    std::printf("  %s\n", a.str().c_str());
  }
  if (report.alerts.empty()) {
    std::printf("no alerts — something is wrong, the exploit should fire\n");
    return 1;
  }
  return 0;
}
