// Trace analysis: build (or load) a pcap capture, run the full NIDS over
// it, and print an incident report — the deployment workflow of Figure 3.
//
//   $ ./trace_analysis                 # synthesize and analyze a demo trace
//   $ ./trace_analysis capture.pcap    # analyze an existing pcap file
//
// The synthesized trace is also written next to the binary as
// demo_trace.pcap so it can be re-analyzed or inspected with other tools.
#include <cstdio>

#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

using namespace senids;

namespace {

pcap::Capture make_demo_trace() {
  gen::TraceBuilder tb(20060705);
  util::Prng& prng = tb.prng();

  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 0, 0, 20);
  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);

  // Background: ordinary clients talking to the web server.
  for (int i = 0; i < 60; ++i) {
    const net::Endpoint client{
        net::Ipv4Addr::from_octets(198, 51, 100, static_cast<std::uint8_t>(1 + i % 200)),
        static_cast<std::uint16_t>(33000 + i)};
    tb.add_benign(client, server, gen::make_benign_payload(prng));
  }

  // Incident 1: a worm-like host scans dark space, then sends Code Red II.
  const net::Endpoint worm{net::Ipv4Addr::from_octets(203, 0, 113, 9), 4321};
  tb.add_syn_scan(worm, net::Ipv4Addr::from_octets(10, 0, 200, 1), 80, 7);
  tb.add_tcp_flow(worm, net::Endpoint{server, 80}, gen::make_code_red_ii_request());

  // Incident 2: an attacker pokes the honeypot with a polymorphic exploit.
  const net::Endpoint attacker{net::Ipv4Addr::from_octets(192, 0, 2, 66), 31337};
  auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, prng);
  tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                  gen::wrap_in_overflow(poly.bytes, prng));

  // Incident 3: a straight bind-shell exploit against the honeypot.
  tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                  gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[8].code, prng));

  return tb.take();
}

}  // namespace

int main(int argc, char** argv) {
  pcap::Capture capture;
  if (argc > 1) {
    auto loaded = pcap::read_file(argv[1]);
    if (!loaded) {
      std::fprintf(stderr, "cannot read pcap file: %s\n", argv[1]);
      return 1;
    }
    capture = std::move(*loaded);
    std::printf("loaded %s: %zu records\n\n", argv[1], capture.records.size());
  } else {
    capture = make_demo_trace();
    pcap::write_file("demo_trace.pcap", capture);
    std::printf("synthesized demo trace: %zu records (saved to demo_trace.pcap)\n\n",
                capture.records.size());
  }

  core::NidsOptions options;
  options.threads = 2;
  core::NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(net::Ipv4Addr::from_octets(10, 0, 0, 7));
  nids.classifier().dark_space().add_unused_prefix(
      classify::Prefix{net::Ipv4Addr::from_octets(10, 0, 200, 0), 24});

  core::Report report = nids.process_capture(capture);
  std::printf("%s", report.str().c_str());
  return report.alerts.empty() && argc == 1 ? 1 : 0;
}
