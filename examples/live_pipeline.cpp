// Live pipeline: the deployment shape for continuous monitoring. A
// capture thread pushes frames into a bounded queue (backpressure bounds
// memory under bursts); an analysis thread drains it through a
// LiveSession and alerts fire the moment a flow closes — no end-of-batch
// wait. Here the "capture" replays a synthesized trace.
//
//   $ ./live_pipeline
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "util/queue.hpp"

using namespace senids;

int main() {
  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);

  // --- synthesize the "wire": benign flows with two attacks interleaved
  gen::TraceBuilder tb(1337);
  const net::Endpoint attacker{net::Ipv4Addr::from_octets(192, 0, 2, 66), 31337};
  for (int i = 0; i < 40; ++i) {
    const net::Endpoint client{
        net::Ipv4Addr::from_octets(198, 51, 100, static_cast<std::uint8_t>(1 + i)),
        static_cast<std::uint16_t>(40000 + i)};
    tb.add_benign(client, net::Ipv4Addr::from_octets(10, 0, 0, 20),
                  gen::make_benign_payload(tb.prng()));
    if (i == 15) {
      auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, tb.prng());
      tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                      gen::wrap_in_overflow(poly.bytes, tb.prng()));
    }
    if (i == 30) {
      tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                      gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[8].code,
                                            tb.prng()));
    }
  }
  auto capture = tb.take();
  std::printf("replaying %zu frames through the live pipeline...\n\n",
              capture.records.size());

  // --- the pipeline: capture thread -> bounded queue -> analysis thread
  util::BoundedQueue<util::Bytes> queue(/*capacity=*/64);

  core::NidsOptions options;
  core::NidsEngine engine(options);
  engine.classifier().honeypots().add_decoy(honeypot);

  std::atomic<std::size_t> alert_count{0};
  std::thread analysis([&] {
    core::LiveSession session(engine, [&](const core::Alert& alert) {
      ++alert_count;
      std::printf("ALERT %s\n", alert.str().c_str());
    });
    while (auto frame = queue.pop()) {
      session.feed(*frame);
    }
    session.finish();
    std::printf("\nsession: %zu packets, %zu suspicious, %zu units analyzed\n",
                session.stats().packets, session.stats().suspicious_packets,
                session.stats().units_analyzed);
  });

  std::thread producer([&] {
    for (const auto& rec : capture.records) {
      queue.push(rec.data);  // blocks under backpressure
    }
    queue.close();
  });

  producer.join();
  analysis.join();
  std::printf("total alerts: %zu\n", alert_count.load());
  return alert_count.load() > 0 ? 0 : 1;
}
