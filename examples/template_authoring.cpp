// Template authoring: write a detection template in the DSL, load it,
// and test it against both a matching and a non-matching code sample —
// the workflow for extending the NIDS to new exploit families without
// recompiling (the paper's stated future work).
//
//   $ ./template_authoring              # uses the built-in demo template
//   $ ./template_authoring my.tmpl      # loads templates from a file
#include <cstdio>
#include <fstream>
#include <sstream>

#include "gen/emitter.hpp"
#include "ir/lifter.hpp"
#include "semantic/analyzer.hpp"
#include "semantic/dsl.hpp"
#include "arch/format.hpp"
#include "arch/scan.hpp"

using namespace senids;

namespace {

constexpr const char kDemoTemplates[] = R"(
# A decoder that XORs each byte with a key, walks a pointer, and loops.
template my-xor-decoder : decryption-loop {
  store *A = xor(load(*A), K)
  advance A
  loopback
}

# Linux chmod("/...", ...) exploit behaviour: syscall 15 with the path
# embedded in the payload.
template chmod-exploit : custom {
  syscall 0x0f path "/etc"
}
)";

/// A chmod("/etc/shadow", 0666)-style payload (jmp/call/pop).
util::Bytes chmod_sample() {
  gen::Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(gen::R32::ebx);
  a.xor_r32_r32(gen::R32::eax, gen::R32::eax);
  a.mov_r32_imm32(gen::R32::ecx, 0666);
  a.mov_r8_imm8(gen::R8::al, 0x0f);
  a.int_imm(0x80);
  a.bind(lget);
  a.call(lmain);
  a.raw(util::as_bytes("/etc/shadowX"));
  return a.finish();
}

/// A benign-looking routine: copies and sums a buffer, no decoding.
util::Bytes benign_sample() {
  gen::Asm a;
  auto head = a.new_label();
  a.xor_r32_r32(gen::R32::edx, gen::R32::edx);
  a.bind(head);
  a.mov_r8_mem(gen::R8::al, gen::R32::esi);
  a.alu_r8_r8(0, gen::R8::dl, gen::R8::al);  // add dl, al (checksum)
  a.inc_r32(gen::R32::esi);
  a.dec_r32(gen::R32::ecx);
  a.jnz(head);
  a.ret();
  return a.finish();
}

util::Bytes xor_decoder_sample() {
  gen::Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(gen::R32::edi, 0x42);
  a.inc_r32(gen::R32::edi);
  a.loop_(head);
  return a.finish();
}

void test_sample(const semantic::SemanticAnalyzer& analyzer, const char* name,
                 const util::Bytes& code) {
  std::printf("\n-- sample: %s --\n", name);
  std::printf("%s", arch::format_listing(arch::linear_sweep(code)).c_str());
  auto detections = analyzer.analyze(code);
  if (detections.empty()) {
    std::printf("=> no template matches\n");
    return;
  }
  for (const auto& d : detections) {
    std::printf("=> matched '%s' (%s) at +0x%zx\n", d.template_name.c_str(),
                std::string(semantic::threat_class_name(d.threat)).c_str(),
                d.match_offset);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemoTemplates;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  auto parsed = semantic::parse_templates(source);
  if (auto* err = std::get_if<semantic::ParseError>(&parsed)) {
    std::fprintf(stderr, "template parse error at line %zu: %s\n", err->line,
                 err->message.c_str());
    return 1;
  }
  auto templates = std::get<std::vector<semantic::Template>>(parsed);
  std::printf("loaded %zu template(s):\n", templates.size());
  for (const auto& t : templates) {
    std::printf("  %-24s class=%s, %zu statement(s)\n", t.name.c_str(),
                std::string(semantic::threat_class_name(t.threat)).c_str(),
                t.stmts.size());
  }

  semantic::SemanticAnalyzer analyzer(std::move(templates));
  test_sample(analyzer, "xor decoder (should match my-xor-decoder)",
              xor_decoder_sample());
  test_sample(analyzer, "chmod exploit (should match chmod-exploit)", chmod_sample());
  test_sample(analyzer, "benign checksum loop (should not match)", benign_sample());
  return 0;
}
